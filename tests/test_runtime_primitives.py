"""Unit + property tests for the data-parallel primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime import CostAccumulator
from repro.runtime.model import lg
from repro.runtime.primitives import (
    dedupe,
    flatten,
    group_by_key,
    pack,
    parallel_argsort,
    parallel_map,
    parallel_reduce_max,
    parallel_reduce_sum,
    parallel_sort,
    prefix_sum,
)

int_arrays = hnp.arrays(np.int64, st.integers(0, 200),
                        elements=st.integers(-1000, 1000))


class TestPrefixSum:
    def test_exclusive_semantics(self):
        acc = CostAccumulator()
        out = prefix_sum(np.array([3, 1, 4, 1, 5]), acc)
        assert out.tolist() == [0, 3, 4, 8, 9, 14]

    def test_empty(self):
        acc = CostAccumulator()
        assert prefix_sum(np.array([], dtype=np.int64), acc).tolist() == [0]

    def test_charges_linear_work(self):
        acc = CostAccumulator()
        prefix_sum(np.arange(100), acc)
        assert acc.work == 100
        assert acc.span == pytest.approx(lg(100))

    @given(int_arrays)
    @settings(max_examples=30, deadline=None)
    def test_matches_cumsum(self, a):
        acc = CostAccumulator()
        out = prefix_sum(a, acc)
        assert out[0] == 0
        np.testing.assert_array_equal(out[1:], np.cumsum(a))


class TestPack:
    def test_selects_masked(self):
        acc = CostAccumulator()
        a = np.array([1, 2, 3, 4])
        m = np.array([True, False, True, False])
        assert pack(a, m, acc).tolist() == [1, 3]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pack(np.arange(3), np.array([True]), CostAccumulator())

    def test_span_is_logarithmic(self):
        acc = CostAccumulator()
        pack(np.arange(1024), np.zeros(1024, dtype=bool), acc)
        assert acc.span == pytest.approx(2 * lg(1024))


class TestSort:
    @given(int_arrays)
    @settings(max_examples=30, deadline=None)
    def test_sorted_output(self, a):
        acc = CostAccumulator()
        out = parallel_sort(a, acc)
        np.testing.assert_array_equal(out, np.sort(a))

    def test_argsort_stable(self):
        acc = CostAccumulator()
        a = np.array([2, 1, 2, 1])
        order = parallel_argsort(a, acc)
        assert order.tolist() == [1, 3, 0, 2]

    def test_work_n_log_n(self):
        acc = CostAccumulator()
        parallel_sort(np.arange(256), acc)
        assert acc.work == pytest.approx(256 * lg(256))
        assert acc.span == pytest.approx(lg(256) ** 2)


class TestReduce:
    def test_max_empty_default(self):
        acc = CostAccumulator()
        assert parallel_reduce_max(np.array([]), acc, default=-1) == -1

    def test_max(self):
        acc = CostAccumulator()
        assert parallel_reduce_max(np.array([3, 9, 2]), acc) == 9

    def test_sum(self):
        acc = CostAccumulator()
        assert parallel_reduce_sum(np.array([3, 9, 2]), acc) == 14

    def test_sum_empty(self):
        acc = CostAccumulator()
        assert parallel_reduce_sum(np.array([]), acc) == 0


class TestParallelMap:
    def test_applies_function(self):
        acc = CostAccumulator()
        assert parallel_map([1, 2, 3], lambda x: x * x, acc) == [1, 4, 9]

    def test_charges_per_item_work(self):
        acc = CostAccumulator()
        parallel_map(list(range(10)), lambda x: x, acc, per_item_work=3.0)
        assert acc.work == 30


class TestGroupByKey:
    def test_groups(self):
        acc = CostAccumulator()
        keys = np.array([2, 1, 2, 1, 3])
        vals = np.array([10, 20, 30, 40, 50])
        groups = dict((k, sorted(v.tolist()))
                      for k, v in group_by_key(keys, vals, acc))
        assert groups == {1: [20, 40], 2: [10, 30], 3: [50]}

    def test_empty(self):
        acc = CostAccumulator()
        assert group_by_key(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64), acc) == []

    def test_mismatch(self):
        with pytest.raises(ValueError):
            group_by_key(np.arange(3), np.arange(2), CostAccumulator())

    @given(hnp.arrays(np.int64, st.integers(1, 50),
                      elements=st.integers(0, 5)))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, keys):
        """Groups partition the values and preserve key association."""
        acc = CostAccumulator()
        vals = np.arange(len(keys))
        groups = group_by_key(keys, vals, acc)
        seen = np.concatenate([v for _, v in groups]) if groups else np.array([])
        assert sorted(seen.tolist()) == list(range(len(keys)))
        for k, v in groups:
            assert (keys[v] == k).all()


class TestFlattenDedupe:
    def test_flatten(self):
        acc = CostAccumulator()
        out = flatten([np.array([1, 2]), np.array([]), np.array([3])], acc)
        assert out.tolist() == [1, 2, 3]

    def test_flatten_empty(self):
        acc = CostAccumulator()
        assert flatten([], acc).tolist() == []

    def test_dedupe(self):
        acc = CostAccumulator()
        assert dedupe(np.array([3, 1, 3, 2, 1]), acc).tolist() == [1, 2, 3]
