"""Tests for baseline algorithms (which serve as oracles elsewhere)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    bellman_ford,
    bellman_ford_distance_only,
    dag_limited_sssp_reference,
    dag_sssp,
    dijkstra,
    johnson_potential,
)
from repro.graph import (
    DiGraph,
    hidden_potential_graph,
    is_feasible_price,
    random_dag,
    random_digraph,
    validate_negative_cycle,
)
from oracles import nx_sssp_oracle


class TestBellmanFord:
    def test_diamond(self, diamond):
        res = bellman_ford(diamond, 0)
        assert res.dist.tolist() == [0, 1, 4, 3]
        assert not res.has_negative_cycle

    def test_unreachable_inf(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        res = bellman_ford(g, 0)
        assert res.dist[2] == np.inf

    def test_negative_edges_no_cycle(self):
        g = DiGraph.from_edges(4, [(0, 1, 5), (1, 2, -7), (0, 2, 1),
                                   (2, 3, 2)])
        res = bellman_ford(g, 0)
        assert res.dist.tolist() == [0, 5, -2, 0]

    def test_parent_tree_consistent(self):
        g = random_digraph(30, 150, min_w=1, max_w=9, seed=0)
        res = bellman_ford(g, 0)
        for v in range(g.n):
            p = int(res.parent[v])
            if p >= 0:
                assert res.dist[v] == res.dist[p] + g.min_weight_between(p, v)

    def test_negative_cycle_detection(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -3), (2, 1, 1)])
        res = bellman_ford(g, 0)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)

    def test_negative_self_loop(self):
        g = DiGraph.from_edges(2, [(0, 1, 0), (1, 1, -1)])
        res = bellman_ford(g, 0)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)

    def test_unreachable_negative_cycle_ignored(self):
        # cycle exists but is not reachable from source 0
        g = DiGraph.from_edges(4, [(0, 1, 1), (2, 3, -5), (3, 2, 1)])
        res = bellman_ford(g, 0)
        assert not res.has_negative_cycle
        assert res.dist[1] == 1

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bellman_ford(DiGraph.from_edges(2, []), 5)

    def test_cost_charged(self):
        g = random_digraph(20, 80, seed=1)
        res = bellman_ford(g, 0)
        assert res.cost.work >= g.m  # at least one relaxation round

    def test_distance_only_round_limit(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, 1)])
        d = bellman_ford_distance_only(g, 0, max_rounds=1)
        assert d.tolist() == [0, 1, np.inf]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_random(self, seed):
        g = random_digraph(25, 120, min_w=-3, max_w=8, seed=seed)
        expected, has_cycle = nx_sssp_oracle(g, 0)
        res = bellman_ford(g, 0)
        if has_cycle:
            assert res.has_negative_cycle
            assert validate_negative_cycle(g, res.negative_cycle)
        else:
            assert not res.has_negative_cycle
            np.testing.assert_array_equal(res.dist, expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_hidden_potential_never_cyclic(self, seed):
        g = hidden_potential_graph(15, 60, seed=seed)
        assert not bellman_ford(g, 0).has_negative_cycle


class TestDijkstra:
    def test_basic(self):
        g = DiGraph.from_edges(4, [(0, 1, 1), (1, 2, 2), (0, 2, 5),
                                   (2, 3, 1)])
        res = dijkstra(g, 0)
        assert res.dist.tolist() == [0, 1, 3, 4]
        assert res.parent.tolist() == [-1, 0, 1, 2]

    def test_rejects_negative(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(ValueError):
            dijkstra(g, 0)

    def test_limit(self):
        g = DiGraph.from_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 10)])
        res = dijkstra(g, 0, limit=3)
        assert res.dist.tolist() == [0, 1, 3, np.inf]

    def test_limit_exact_boundary(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 1)])
        res = dijkstra(g, 0, limit=3)
        assert res.dist[2] == 3  # <= limit stays

    def test_zero_weight_edges(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)])
        res = dijkstra(g, 0)
        assert res.dist.tolist() == [0, 0, 0]

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bellman_ford(self, seed):
        g = random_digraph(40, 200, min_w=0, max_w=9, seed=seed)
        d1 = dijkstra(g, 0).dist
        d2 = bellman_ford(g, 0).dist
        np.testing.assert_array_equal(d1, d2)

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            dijkstra(DiGraph.from_edges(2, []), -1)


class TestDagSssp:
    def test_negative_weights_on_dag(self):
        g = DiGraph.from_edges(4, [(0, 1, -1), (1, 2, -1), (0, 2, -3),
                                   (2, 3, 0)])
        res = dag_sssp(g, 0)
        assert res.dist.tolist() == [0, -1, -3, -3]

    def test_rejects_cyclic(self):
        g = DiGraph.from_edges(2, [(0, 1, 1), (1, 0, 1)])
        with pytest.raises(ValueError):
            dag_sssp(g, 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bellman_ford_on_dags(self, seed):
        g = random_dag(30, 120, weights=(-1, 0, 2, 5), seed=seed)
        d1 = dag_sssp(g, 0).dist
        d2 = bellman_ford(g, 0).dist
        np.testing.assert_array_equal(d1, d2)

    def test_limited_reference_clamps(self):
        g = DiGraph.from_edges(4, [(0, 1, -1), (1, 2, -1), (2, 3, -1)])
        d = dag_limited_sssp_reference(g, 0, limit=2)
        assert d.tolist() == [0, -1, -2, -np.inf]


class TestJohnson:
    def test_feasible_on_negative_graph(self):
        g = DiGraph.from_edges(3, [(0, 1, -2), (1, 2, -3)])
        res = johnson_potential(g)
        assert res.negative_cycle is None
        assert is_feasible_price(g, res.price)

    def test_detects_cycle_anywhere(self):
        # cycle not reachable from vertex 0 — Johnson still finds it
        g = DiGraph.from_edges(4, [(0, 1, 1), (2, 3, -5), (3, 2, 1)])
        res = johnson_potential(g)
        assert res.negative_cycle is not None
        assert validate_negative_cycle(g, res.negative_cycle)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_feasibility(self, seed):
        g = hidden_potential_graph(30, 150, seed=seed)
        res = johnson_potential(g)
        assert res.price is not None
        assert is_feasible_price(g, res.price)
