"""Edge-case and failure-path tests that the mainline suites don't reach."""

import numpy as np
import pytest

from repro.core import one_reweighting, solve_sssp
from repro.core.improvement import ImprovementOutcome
from repro.dag01 import dag01_limited_sssp
from repro.graph import DiGraph, hidden_potential_graph
from repro.limited import limited_sssp
from repro.runtime import CostAccumulator, CostModel


class TestIterationBudget:
    def test_stalled_improvement_raises(self, monkeypatch):
        """A (hypothetical) improvement that makes no progress must trip the
        safety valve instead of looping forever."""
        import repro.core.goldberg as goldberg

        def stalled(g, w_red, **kw):
            return ImprovementOutcome(
                k=1, method="independent-set",
                price_delta=np.zeros(g.n, dtype=np.int64), improved=0)

        monkeypatch.setattr(goldberg, "sqrt_k_improvement", stalled)
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(RuntimeError, match="iteration budget"):
            one_reweighting(g, max_iterations=5)

    def test_explicit_iteration_budget_respected(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        # one iteration suffices for this instance
        res = one_reweighting(g, max_iterations=3)
        assert res.feasible


class TestCostModelPropagation:
    def test_custom_exponent_raises_model_span(self):
        g = hidden_potential_graph(40, 160, seed=0)
        default = solve_sssp(g, 0, seed=0)
        steep = solve_sssp(g, 0, seed=0,
                           model=CostModel(reach_span_exponent=0.9))
        assert steep.cost.span_model > default.cost.span_model
        np.testing.assert_array_equal(steep.dist, default.dist)

    def test_polylog_factor(self):
        g = hidden_potential_graph(30, 120, seed=1)
        doubled = solve_sssp(g, 0, seed=1,
                             model=CostModel(polylog_span_factor=2.0))
        base = solve_sssp(g, 0, seed=1)
        assert doubled.cost.span_model > base.cost.span_model

    def test_model_threads_through_dag01(self):
        from repro.graph import negative_chain_gadget

        g = negative_chain_gadget(6, tail=1)
        a = dag01_limited_sssp(g, 0, 6)
        b = dag01_limited_sssp(g, 0, 6,
                               model=CostModel(reach_span_exponent=0.9))
        assert b.cost.span_model > a.cost.span_model
        np.testing.assert_array_equal(a.dist, b.dist)

    def test_model_threads_through_limited(self):
        from repro.graph import zero_heavy_digraph

        g = zero_heavy_digraph(25, 120, seed=2)
        a = limited_sssp(g, 0, 6)
        b = limited_sssp(g, 0, 6,
                         model=CostModel(reach_span_exponent=0.9))
        assert b.cost.span_model > a.cost.span_model


class TestDegenerateGraphs:
    def test_empty_graph_everything(self):
        g = DiGraph.from_edges(1, [])
        assert solve_sssp(g, 0).dist.tolist() == [0]
        assert limited_sssp(g, 0, 3).dist.tolist() == [0]
        assert dag01_limited_sssp(g, 0, 3).dist.tolist() == [0]

    def test_two_isolated_vertices(self):
        g = DiGraph.from_edges(2, [])
        res = solve_sssp(g, 1)
        assert res.dist.tolist() == [np.inf, 0]

    def test_single_negative_edge(self):
        g = DiGraph.from_edges(2, [(0, 1, -7)])
        res = solve_sssp(g, 0)
        assert res.dist.tolist() == [0, -7]
        assert len(res.stats.scales) >= 3  # log2(7) scales

    def test_positive_self_loop_harmless(self):
        g = DiGraph.from_edges(2, [(0, 0, 5), (0, 1, 1)])
        res = solve_sssp(g, 0)
        assert res.dist.tolist() == [0, 1]

    def test_negative_self_loop_is_cycle(self):
        g = DiGraph.from_edges(2, [(0, 0, -1), (0, 1, 1)])
        res = solve_sssp(g, 0)
        assert res.has_negative_cycle
        assert res.negative_cycle == [0]

    def test_zero_self_loop_harmless(self):
        g = DiGraph.from_edges(2, [(0, 0, 0), (0, 1, -2)])
        res = solve_sssp(g, 0)
        assert res.dist.tolist() == [0, -2]

    def test_parallel_negative_edges(self):
        g = DiGraph.from_edges(2, [(0, 1, -3), (0, 1, -5), (0, 1, 2)])
        res = solve_sssp(g, 0)
        assert res.dist.tolist() == [0, -5]

    def test_two_vertex_zero_cycle_with_negative_entry(self):
        g = DiGraph.from_edges(3, [(0, 1, -4), (1, 2, 0), (2, 1, 0)])
        res = solve_sssp(g, 0)
        assert res.dist.tolist() == [0, -4, -4]


class TestAccumulatorSharing:
    def test_one_accumulator_across_calls(self):
        """Users can thread one ledger through several solves."""
        acc = CostAccumulator()
        g1 = hidden_potential_graph(20, 80, seed=3)
        g2 = hidden_potential_graph(20, 80, seed=4)
        r1 = solve_sssp(g1, 0, acc=acc, seed=3)
        mid = acc.work
        r2 = solve_sssp(g2, 0, acc=acc, seed=4)
        assert acc.work == pytest.approx(r1.cost.work + r2.cost.work)
        assert acc.work > mid
