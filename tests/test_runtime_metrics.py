"""Unit tests for the work-span accounting objects."""

import math

import pytest

from repro.runtime import Cost, CostAccumulator
from repro.runtime.metrics import ZERO


class TestCost:
    def test_defaults_zero(self):
        c = Cost()
        assert c.work == 0 and c.span == 0 and c.span_model == 0

    def test_span_model_defaults_to_span(self):
        c = Cost(10, 3)
        assert c.span_model == 3

    def test_span_model_explicit(self):
        c = Cost(10, 3, 7)
        assert c.span == 3 and c.span_model == 7

    def test_sequential_composition_adds(self):
        c = Cost(5, 2) + Cost(7, 3)
        assert (c.work, c.span, c.span_model) == (12, 5, 5)

    def test_parallel_composition_maxes_span(self):
        c = Cost(5, 2) | Cost(7, 3)
        assert (c.work, c.span, c.span_model) == (12, 3, 3)

    def test_parallel_composition_mixed_model_span(self):
        c = Cost(5, 2, 9) | Cost(7, 3, 1)
        assert c.span == 3 and c.span_model == 9

    def test_scaled(self):
        c = Cost(5, 2).scaled(3)
        assert (c.work, c.span) == (15, 6)

    def test_parallel_all_empty(self):
        c = Cost.parallel_all([])
        assert c == ZERO

    def test_parallel_all(self):
        c = Cost.parallel_all([Cost(1, 1), Cost(2, 5), Cost(3, 2)])
        assert (c.work, c.span) == (6, 5)

    def test_parallelism(self):
        assert Cost(100, 4).parallelism == 25
        assert Cost(100, 0).parallelism == math.inf

    def test_add_non_cost_not_implemented(self):
        with pytest.raises(TypeError):
            Cost(1, 1) + 3

    def test_immutable(self):
        with pytest.raises(Exception):
            Cost(1, 1).work = 5


class TestCostAccumulator:
    def test_starts_at_zero(self):
        acc = CostAccumulator()
        assert acc.work == 0 and acc.span == 0 and acc.span_model == 0

    def test_charge_defaults(self):
        acc = CostAccumulator()
        acc.charge(5)
        assert acc.work == 5 and acc.span == 5 and acc.span_model == 5

    def test_charge_span_model_defaults_to_span(self):
        acc = CostAccumulator()
        acc.charge(10, 2)
        assert acc.span == 2 and acc.span_model == 2

    def test_charge_split_tracks(self):
        acc = CostAccumulator()
        acc.charge(10, span=2, span_model=8)
        assert acc.span == 2 and acc.span_model == 8

    def test_negative_charge_rejected(self):
        acc = CostAccumulator()
        with pytest.raises(ValueError):
            acc.charge(-1)

    def test_charge_cost(self):
        acc = CostAccumulator()
        acc.charge_cost(Cost(3, 1, 2))
        acc.charge_cost(Cost(4, 2, 2))
        assert (acc.work, acc.span, acc.span_model) == (7, 3, 4)

    def test_snapshot_is_cost(self):
        acc = CostAccumulator()
        acc.charge(4, 2)
        snap = acc.snapshot()
        assert isinstance(snap, Cost)
        assert snap.work == 4 and snap.span == 2

    def test_fork_join_parallel(self):
        acc = CostAccumulator()
        b1, b2 = acc.fork(), acc.fork()
        b1.charge(10, 4)
        b2.charge(20, 3)
        acc.join_parallel([b1, b2], fork_span=1)
        assert acc.work == 30
        assert acc.span == 5  # max(4, 3) + 1

    def test_join_parallel_empty(self):
        acc = CostAccumulator()
        acc.join_parallel([], fork_span=2)
        assert acc.work == 0 and acc.span == 2

    def test_parallelism_property(self):
        acc = CostAccumulator()
        acc.charge(100, span=5, span_model=10)
        assert acc.parallelism == 10
