"""Tests for certificate validation and topological utilities."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    check_distances,
    cycle_weight,
    is_dag,
    is_feasible_price,
    min_reduced_weight,
    topological_order,
    validate_negative_cycle,
)


class TestFeasiblePrice:
    def test_zero_price_nonneg_graph(self):
        g = DiGraph.from_edges(2, [(0, 1, 3)])
        assert is_feasible_price(g, np.zeros(2))

    def test_zero_price_negative_edge(self):
        g = DiGraph.from_edges(2, [(0, 1, -3)])
        assert not is_feasible_price(g, np.zeros(2))

    def test_fixing_price(self):
        g = DiGraph.from_edges(2, [(0, 1, -3)])
        assert is_feasible_price(g, np.array([0, -3]))

    def test_empty_graph(self):
        g = DiGraph.from_edges(3, [])
        assert is_feasible_price(g, np.zeros(3))

    def test_length_check(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError):
            is_feasible_price(g, np.zeros(3))

    def test_min_reduced_weight(self):
        g = DiGraph.from_edges(2, [(0, 1, -3), (1, 0, 5)])
        assert min_reduced_weight(g, np.array([0, -2])) == -1

    def test_min_reduced_weight_empty(self):
        assert min_reduced_weight(DiGraph.from_edges(1, []), np.zeros(1)) == 0


class TestCycles:
    def test_cycle_weight(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -4), (2, 0, 2)])
        assert cycle_weight(g, [0, 1, 2]) == -1

    def test_cycle_weight_uses_min_parallel_edge(self):
        g = DiGraph.from_edges(2, [(0, 1, 5), (0, 1, 1), (1, 0, 0)])
        assert cycle_weight(g, [0, 1]) == 1

    def test_missing_edge_raises(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            cycle_weight(g, [0, 2])

    def test_empty_cycle_raises(self):
        g = DiGraph.from_edges(1, [])
        with pytest.raises(ValueError):
            cycle_weight(g, [])

    def test_self_loop_cycle(self):
        g = DiGraph.from_edges(1, [(0, 0, -2)])
        assert cycle_weight(g, [0]) == -2
        assert validate_negative_cycle(g, [0])

    def test_validate_negative_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -4), (2, 0, 2)])
        assert validate_negative_cycle(g, [0, 1, 2])
        assert validate_negative_cycle(g, [1, 2, 0])  # rotation ok
        assert not validate_negative_cycle(g, [0, 1])  # not a closed walk

    def test_validate_nonnegative_cycle(self):
        g = DiGraph.from_edges(2, [(0, 1, 1), (1, 0, 0)])
        assert not validate_negative_cycle(g, [0, 1])


class TestTopological:
    def test_dag(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (0, 2, 0), (1, 3, 0),
                                   (2, 3, 0)])
        assert is_dag(g)
        order = topological_order(g)
        pos = {int(v): i for i, v in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 2, 0), (2, 0, 0)])
        assert not is_dag(g)
        assert topological_order(g) is None

    def test_self_loop_not_dag(self):
        g = DiGraph.from_edges(2, [(0, 0, 0)])
        assert not is_dag(g)

    def test_empty_graph_is_dag(self):
        assert is_dag(DiGraph.from_edges(0, []))
        assert is_dag(DiGraph.from_edges(5, []))

    def test_isolated_vertices_in_order(self):
        g = DiGraph.from_edges(5, [(1, 2, 0)])
        order = topological_order(g)
        assert sorted(order.tolist()) == [0, 1, 2, 3, 4]


class TestCheckDistances:
    def test_valid_distances(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 10)])
        assert check_distances(g, 0, np.array([0.0, 2.0, 5.0]))

    def test_unreachable_inf_ok(self):
        g = DiGraph.from_edges(3, [(0, 1, 2)])
        assert check_distances(g, 0, np.array([0.0, 2.0, np.inf]))

    def test_wrong_source_distance(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        assert not check_distances(g, 0, np.array([1.0, 2.0]))

    def test_relaxable_edge_fails(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        assert not check_distances(g, 0, np.array([0.0, 2.0, 9.0]))

    def test_unattained_distance_fails(self):
        g = DiGraph.from_edges(2, [(0, 1, 5)])
        assert not check_distances(g, 0, np.array([0.0, 4.0]))

    def test_negative_weights_supported(self):
        g = DiGraph.from_edges(3, [(0, 1, 5), (1, 2, -3), (0, 2, 3)])
        assert check_distances(g, 0, np.array([0.0, 5.0, 2.0]))
