"""Trace stitching across preemption: interrupted + resumed == uninterrupted.

Companion to the kill-and-resume sweep in ``test_preempt_resume.py``:
there the *answers* must be bit-identical across a crash/resume; here the
*traces* must be stitchable back into the uninterrupted phase story.  The
solve is crashed right after each checkpoint write (the checkpoint
records the tracer cursor), resumed under a fresh tracer, and
``stitch_traces`` of the two halves must reproduce the uninterrupted
run's exact phase sequence — no duplicated scales, no holes, no
``checkpoint-restore`` bookkeeping leaking through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve_sssp_resilient
from repro.graph import generators
from repro.observability import (
    Trace,
    Tracer,
    phase_sequence,
    stitch_traces,
    tracing,
)
from repro.resilience import load_checkpoint

pytestmark = [pytest.mark.observability, pytest.mark.resilience]


class SimulatedCrash(Exception):
    """Stands in for SIGKILL right after a checkpoint hits the disk."""


GRAPHS = [
    ("hidden-18", lambda: generators.hidden_potential_graph(
        18, 56, potential_spread=9, seed=2)),
    ("hidden-24", lambda: generators.hidden_potential_graph(
        24, 70, seed=2)),
    ("bf-hard-16", lambda: generators.bf_hard_graph(
        16, 48, potential_spread=12, seed=3)),
]


def _traced(fn):
    tr = Tracer()
    with tracing(tr):
        res = fn()
    return Trace.from_tracer(tr), res


@pytest.mark.parametrize("name,make", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_stitched_trace_equals_uninterrupted(name, make, tmp_path):
    g = make()
    base_trace, base = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    assert not base.has_negative_cycle
    base_seq = phase_sequence(base_trace)
    n_scales = len(base.stats.scales)
    assert n_scales >= 2

    for k in range(n_scales):
        path = tmp_path / f"{name}-ck{k}.bin"

        def crash_after_k(ck, k=k):
            if ck.scale_idx == k:
                raise SimulatedCrash

        tr1 = Tracer()
        with tracing(tr1), pytest.raises(SimulatedCrash):
            solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                 on_checkpoint=crash_after_k)
        first = Trace.from_tracer(tr1)

        ck = load_checkpoint(path)
        assert ck.scale_idx == k
        # the checkpoint cursor covers at least solve > scaling > k+1
        # closed scale spans (plus everything nested under them)
        assert ck.trace_cursor > k

        tr2 = Tracer()
        with tracing(tr2):
            res = solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                       resume=True)
        np.testing.assert_array_equal(res.dist, base.dist)
        resumed = Trace.from_tracer(tr2)
        assert resumed.resumed_cursor == ck.trace_cursor

        stitched = stitch_traces(first, resumed)
        assert stitched.meta["stitched"] is True
        assert stitched.meta["stitch_cursor"] == ck.trace_cursor
        assert not any(s.name == "checkpoint-restore" for s in stitched.spans)
        assert phase_sequence(stitched) == base_seq


def test_resumed_trace_totals_match_its_own_cost(tmp_path):
    """The resumed half is a well-formed trace in its own right: its root
    totals must equal the resumed solve's reported cost."""
    g = generators.hidden_potential_graph(18, 56, potential_spread=9, seed=2)
    path = tmp_path / "ck.bin"

    def crash_first(ck):
        raise SimulatedCrash

    with tracing(Tracer()), pytest.raises(SimulatedCrash):
        solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                             on_checkpoint=crash_first)

    tr2 = Tracer()
    with tracing(tr2):
        res = solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                   resume=True)
    work, span, span_model = Trace.from_tracer(tr2).totals()
    assert work == res.cost.work
    assert span == res.cost.span
    assert span_model == res.cost.span_model


def test_stitch_requires_cursor(tmp_path):
    """A resumed trace that never went through checkpoint restore cannot
    be stitched implicitly."""
    g = generators.hidden_potential_graph(16, 48, seed=0)
    t1, _ = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    t2, _ = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    assert t2.resumed_cursor is None
    with pytest.raises(ValueError):
        stitch_traces(t1, t2)
    # explicit cursor works regardless
    out = stitch_traces(t1, t2, cursor=0)
    assert phase_sequence(out) == phase_sequence(t2)


# ---------------------------------------------------------------------------
# shipped worker spans: stitching, chaos, and Perfetto export
# ---------------------------------------------------------------------------

def _assert_no_orphans(trace: Trace) -> None:
    sids = {s.sid for s in trace.spans}
    for s in trace.spans:
        assert s.parent is None or s.parent in sids, \
            f"span {s.sid} ({s.name}) has orphan parent {s.parent}"


@pytest.mark.telemetry
def test_stitched_process_backend_trace_with_shipped_spans(tmp_path):
    """Crash/resume over the process backend: both trace halves carry
    spliced in-worker spans, and the stitch still reproduces the
    uninterrupted phase story with no orphaned parents."""
    from repro.runtime.backends import ProcessForkJoinPool

    g = generators.hidden_potential_graph(18, 56, potential_spread=9,
                                          seed=2)
    with ProcessForkJoinPool(2, grain=8) as pool:
        base_trace, base = _traced(
            lambda: solve_sssp_resilient(g, 0, seed=0, backend=pool))
        base_seq = phase_sequence(base_trace)

        path = tmp_path / "ck.bin"

        def crash_first(ck):
            raise SimulatedCrash

        tr1 = Tracer()
        with tracing(tr1), pytest.raises(SimulatedCrash):
            solve_sssp_resilient(g, 0, seed=0, backend=pool,
                                 checkpoint_path=path,
                                 on_checkpoint=crash_first)
        tr2 = Tracer()
        with tracing(tr2):
            res = solve_sssp_resilient(g, 0, seed=0, backend=pool,
                                       checkpoint_path=path, resume=True)
    np.testing.assert_array_equal(res.dist, base.dist)
    first, resumed = Trace.from_tracer(tr1), Trace.from_tracer(tr2)
    for half in (first, resumed):
        _assert_no_orphans(half)
    stitched = stitch_traces(first, resumed)
    assert phase_sequence(stitched) == base_seq
    shipped = [s for s in stitched.spans if s.name == "block-reduce"]
    assert shipped and all("worker" in s.attrs for s in shipped)


@pytest.mark.telemetry
@pytest.mark.chaos
def test_worker_kill_chaos_trace_marks_losses_no_orphans(tmp_path):
    """Chaos kills under tracing: lost workers surface as worker-lost
    events, re-dispatched blocks keep attempt>1 attrs, the spliced trace
    has no orphan parents, and the Perfetto export stays loadable."""
    import json

    from repro.observability import write_trace
    from repro.resilience.faults import FaultPlan, FaultSpec
    from repro.runtime.backends import ProcessForkJoinPool

    g = generators.hidden_potential_graph(24, 70, seed=2)
    ref = solve_sssp_resilient(g, 0, seed=0)
    plan = FaultPlan([FaultSpec("worker_kill", calls=(1,))], seed=3)
    tr = Tracer()
    with ProcessForkJoinPool(2, grain=8, liveness_timeout=0.5,
                             backoff_base=0.01) as pool:
        with tracing(tr):
            res = solve_sssp_resilient(g, 0, seed=0, backend=pool,
                                       fault_plan=plan)
        losses = list(pool.worker_losses)
    np.testing.assert_array_equal(res.dist, ref.dist)
    trace = Trace.from_tracer(tr)
    _assert_no_orphans(trace)
    lost_events = [e for e in trace.events if e.name == "worker-lost"]
    assert len(lost_events) == len(losses) >= 1
    for e in lost_events:
        assert e.attrs["kind"] in ("death", "hang")
    redispatched = [s for s in trace.spans
                    if s.name == "map-blocks-block"
                    and s.attrs.get("attempt", 1) > 1]
    assert redispatched, "a killed block must be re-dispatched"
    # Perfetto export with shipped spans: valid JSON, worker args ride
    out = write_trace(tr, tmp_path / "chaos.chrome.json", fmt="chrome")
    doc = json.loads(out.read_text())
    names = {e.get("name") for e in doc["traceEvents"]}
    assert "map-blocks-block" in names and "worker-lost" in names
    assert any(e.get("args", {}).get("worker") is not None
               for e in doc["traceEvents"]
               if e.get("name") == "block-reduce")
