"""Trace stitching across preemption: interrupted + resumed == uninterrupted.

Companion to the kill-and-resume sweep in ``test_preempt_resume.py``:
there the *answers* must be bit-identical across a crash/resume; here the
*traces* must be stitchable back into the uninterrupted phase story.  The
solve is crashed right after each checkpoint write (the checkpoint
records the tracer cursor), resumed under a fresh tracer, and
``stitch_traces`` of the two halves must reproduce the uninterrupted
run's exact phase sequence — no duplicated scales, no holes, no
``checkpoint-restore`` bookkeeping leaking through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve_sssp_resilient
from repro.graph import generators
from repro.observability import (
    Trace,
    Tracer,
    phase_sequence,
    stitch_traces,
    tracing,
)
from repro.resilience import load_checkpoint

pytestmark = [pytest.mark.observability, pytest.mark.resilience]


class SimulatedCrash(Exception):
    """Stands in for SIGKILL right after a checkpoint hits the disk."""


GRAPHS = [
    ("hidden-18", lambda: generators.hidden_potential_graph(
        18, 56, potential_spread=9, seed=2)),
    ("hidden-24", lambda: generators.hidden_potential_graph(
        24, 70, seed=2)),
    ("bf-hard-16", lambda: generators.bf_hard_graph(
        16, 48, potential_spread=12, seed=3)),
]


def _traced(fn):
    tr = Tracer()
    with tracing(tr):
        res = fn()
    return Trace.from_tracer(tr), res


@pytest.mark.parametrize("name,make", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_stitched_trace_equals_uninterrupted(name, make, tmp_path):
    g = make()
    base_trace, base = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    assert not base.has_negative_cycle
    base_seq = phase_sequence(base_trace)
    n_scales = len(base.stats.scales)
    assert n_scales >= 2

    for k in range(n_scales):
        path = tmp_path / f"{name}-ck{k}.bin"

        def crash_after_k(ck, k=k):
            if ck.scale_idx == k:
                raise SimulatedCrash

        tr1 = Tracer()
        with tracing(tr1), pytest.raises(SimulatedCrash):
            solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                 on_checkpoint=crash_after_k)
        first = Trace.from_tracer(tr1)

        ck = load_checkpoint(path)
        assert ck.scale_idx == k
        # the checkpoint cursor covers at least solve > scaling > k+1
        # closed scale spans (plus everything nested under them)
        assert ck.trace_cursor > k

        tr2 = Tracer()
        with tracing(tr2):
            res = solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                       resume=True)
        np.testing.assert_array_equal(res.dist, base.dist)
        resumed = Trace.from_tracer(tr2)
        assert resumed.resumed_cursor == ck.trace_cursor

        stitched = stitch_traces(first, resumed)
        assert stitched.meta["stitched"] is True
        assert stitched.meta["stitch_cursor"] == ck.trace_cursor
        assert not any(s.name == "checkpoint-restore" for s in stitched.spans)
        assert phase_sequence(stitched) == base_seq


def test_resumed_trace_totals_match_its_own_cost(tmp_path):
    """The resumed half is a well-formed trace in its own right: its root
    totals must equal the resumed solve's reported cost."""
    g = generators.hidden_potential_graph(18, 56, potential_spread=9, seed=2)
    path = tmp_path / "ck.bin"

    def crash_first(ck):
        raise SimulatedCrash

    with tracing(Tracer()), pytest.raises(SimulatedCrash):
        solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                             on_checkpoint=crash_first)

    tr2 = Tracer()
    with tracing(tr2):
        res = solve_sssp_resilient(g, 0, seed=0, checkpoint_path=path,
                                   resume=True)
    work, span, span_model = Trace.from_tracer(tr2).totals()
    assert work == res.cost.work
    assert span == res.cost.span
    assert span_model == res.cost.span_model


def test_stitch_requires_cursor(tmp_path):
    """A resumed trace that never went through checkpoint restore cannot
    be stitched implicitly."""
    g = generators.hidden_potential_graph(16, 48, seed=0)
    t1, _ = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    t2, _ = _traced(lambda: solve_sssp_resilient(g, 0, seed=0))
    assert t2.resumed_cursor is None
    with pytest.raises(ValueError):
        stitch_traces(t1, t2)
    # explicit cursor works regardless
    out = stitch_traces(t1, t2, cursor=0)
    assert phase_sequence(out) == phase_sequence(t2)
