"""Metrics registry: semantics, exporter roundtrips, tracer unification.

The exporters must be *lossless*: ``state()`` (the canonical nested dict)
is the equality basis, and both the JSON document and the Prometheus text
exposition must reconstruct a registry with an identical state.  The
tracer-unification tests pin the contract that every closing span folds
into the bound-or-ambient registry, and the solver-integration tests pin
the first-class phase metrics (scales, retries, peel rounds, reach calls,
refine calls, checkpoint bytes) that `ISSUE`'s observability story hangs
off.
"""

from __future__ import annotations

import pytest

from repro.core.scaling import scaled_reweighting
from repro.core.sssp import solve_sssp
from repro.graph.generators import hidden_potential_graph, random_digraph
from repro.observability import (
    METRICS_SCHEMA,
    MetricsRegistry,
    Tracer,
    current_metrics,
    load_metrics_json,
    metering,
    metric_inc,
    metric_observe,
    metric_set,
    parse_prometheus_text,
    trace_span,
    tracing,
    write_metrics_json,
)

pytestmark = pytest.mark.observability


# ---------------------------------------------------------------------------
# family semantics
# ---------------------------------------------------------------------------

class TestFamilies:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_events_total", "events", ("kind",))
        c.inc(kind="a")
        c.inc(2.5, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3.5
        assert c.value(kind="b") == 1.0
        assert c.value(kind="missing") == 0.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("repro_events_total").inc(-1)

    def test_gauge_goes_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_scale_current")
        g.set(16)
        g.inc(-8)
        assert g.value() == 8.0

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_wall_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        child = h.child()
        assert child.bucket_counts == [1, 2, 1, 1]  # last is +Inf overflow
        assert child.count == 5
        assert child.sum == pytest.approx(56.05)

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("repro_bad", buckets=(1.0, 0.5))

    def test_invalid_metric_name(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad name")

    def test_label_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_events_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="do not match"):
            c.inc(other="x")


class TestRegistryDeclaration:
    def test_redeclare_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_events_total", labelnames=("kind",))
        b = reg.counter("repro_events_total", labelnames=("kind",))
        assert a is b

    def test_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already declared as counter"):
            reg.gauge("repro_x_total")

    def test_labelname_conflict(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="labelnames"):
            reg.counter("repro_x_total", labelnames=("b",))

    def test_convenience_autodeclare(self):
        reg = MetricsRegistry()
        reg.inc("repro_solves_total", mode="parallel")
        reg.inc("repro_solves_total", 2, mode="sequential")
        reg.set("repro_scale_current", 4)
        reg.observe("repro_solve_work", 123.0)
        st = reg.state()
        assert st["repro_solves_total"]["type"] == "counter"
        assert st["repro_solves_total"]["samples"]["mode=parallel"] == 1.0
        assert st["repro_solves_total"]["samples"]["mode=sequential"] == 2.0
        assert st["repro_scale_current"]["samples"][""] == 4.0
        assert st["repro_solve_work"]["samples"][""]["count"] == 1

    def test_labels_named_name_and_value_work(self):
        # the convenience params are positional-only precisely so these
        # label names (used by span_closed) cannot collide
        reg = MetricsRegistry()
        reg.inc("repro_spans_total", 1.0, name="scale", value="x")
        assert reg.state()["repro_spans_total"]["samples"][
            "name=scale,value=x"] == 1.0


# ---------------------------------------------------------------------------
# exporter roundtrips
# ---------------------------------------------------------------------------

def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(run="roundtrip-test")
    reg.inc("repro_solves_total", 3, help="solves", mode="parallel",
            outcome="distances")
    reg.inc("repro_solves_total", 1, mode="parallel",
            outcome="negative_cycle")
    reg.inc("repro_checkpoint_bytes_total", 4096.5)
    reg.set("repro_scale_current", 8, help="current scale")
    reg.observe("repro_solve_work", 58859.64474916778, help="model work")
    reg.observe("repro_solve_work", 0.25)
    reg.observe("repro_span_wall_seconds", 0.0421, name="scale",
                buckets=(0.01, 0.1, 1.0))
    return reg


class TestJsonRoundtrip:
    def test_state_survives(self):
        reg = _populated_registry()
        back = MetricsRegistry.from_json(reg.to_json())
        assert back.state() == reg.state()
        assert back.meta == reg.meta

    def test_file_roundtrip(self, tmp_path):
        reg = _populated_registry()
        path = write_metrics_json(reg, tmp_path / "metrics.json")
        assert load_metrics_json(path).state() == reg.state()

    def test_schema_is_versioned(self):
        doc = _populated_registry().to_json()
        assert doc["schema"] == METRICS_SCHEMA
        doc["schema"] = "repro-metrics/999"
        with pytest.raises(ValueError, match="unknown metrics schema"):
            MetricsRegistry.from_json(doc)


class TestPrometheusRoundtrip:
    def test_state_survives(self):
        reg = _populated_registry()
        back = parse_prometheus_text(reg.to_prometheus())
        assert back.state() == reg.state()

    def test_exposition_format(self):
        text = _populated_registry().to_prometheus()
        assert "# TYPE repro_solves_total counter" in text
        assert "# HELP repro_solves_total solves" in text
        assert "# TYPE repro_scale_current gauge" in text
        assert "# TYPE repro_solve_work histogram" in text
        assert 'repro_solves_total{mode="parallel",outcome="distances"} 3' \
            in text
        # histogram series: cumulative buckets, +Inf, _sum, _count
        assert 'le="+Inf"' in text
        assert "repro_solve_work_sum" in text
        assert "repro_solve_work_count 2" in text

    def test_label_escaping_roundtrip(self):
        reg = MetricsRegistry()
        nasty = 'quote " backslash \\ newline \n done'
        reg.inc("repro_events_total", 1.0, kind=nasty)
        back = parse_prometheus_text(reg.to_prometheus())
        assert back.state() == reg.state()


# ---------------------------------------------------------------------------
# tracer unification
# ---------------------------------------------------------------------------

class TestTracerUnification:
    def test_bound_registry_collects_spans(self):
        reg = MetricsRegistry()
        tr = Tracer(metrics=reg)
        with tracing(tr):
            with trace_span("scale", phase="scaling", scale=4) as sp:
                sp.count("iterations", 3)
        st = reg.state()
        assert st["repro_spans_total"]["samples"][
            "name=scale,phase=scaling"] == 1.0
        assert st["repro_span_counter_total"]["samples"][
            "counter=iterations,span=scale"] == 3.0
        assert st["repro_span_wall_seconds"]["samples"][
            "name=scale"]["count"] == 1

    def test_ambient_registry_collects_spans(self):
        reg = MetricsRegistry()
        with metering(reg):
            with tracing(Tracer()):
                with trace_span("dag01", phase="dag01"):
                    pass
        assert reg.state()["repro_spans_total"]["samples"][
            "name=dag01,phase=dag01"] == 1.0

    def test_bound_registry_wins_over_ambient(self):
        bound, ambient = MetricsRegistry(), MetricsRegistry()
        with metering(ambient):
            with tracing(Tracer(metrics=bound)):
                with trace_span("x", phase="p"):
                    pass
        assert "repro_spans_total" in bound.state()
        assert ambient.state() == {}

    def test_no_registry_no_error(self):
        with tracing(Tracer()):
            with trace_span("x", phase="p"):
                pass  # nothing to fold into; must simply not crash


# ---------------------------------------------------------------------------
# ambient helpers
# ---------------------------------------------------------------------------

class TestAmbient:
    def test_off_by_default(self):
        assert current_metrics() is None
        # all three helpers are no-ops with no registry installed
        metric_inc("repro_x_total")
        metric_set("repro_x", 1)
        metric_observe("repro_x_hist", 1.0)

    def test_metering_installs_and_restores(self):
        reg = MetricsRegistry()
        with metering(reg) as got:
            assert got is reg
            assert current_metrics() is reg
            metric_inc("repro_x_total", 2, kind="k")
        assert current_metrics() is None
        assert reg.state()["repro_x_total"]["samples"]["kind=k"] == 2.0

    def test_metering_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with metering(outer):
            with metering(inner):
                metric_inc("repro_x_total")
            assert current_metrics() is outer
        assert "repro_x_total" in inner.state()
        assert outer.state() == {}


# ---------------------------------------------------------------------------
# solver integration: first-class phase metrics
# ---------------------------------------------------------------------------

class TestSolverMetrics:
    def test_solve_records_phase_metrics(self):
        g = hidden_potential_graph(24, 70, seed=2)
        reg = MetricsRegistry()
        with metering(reg):
            res = solve_sssp(g, 0, seed=7)
        assert not res.has_negative_cycle
        st = reg.state()
        assert st["repro_solves_total"]["samples"][
            "mode=parallel,outcome=distances"] == 1.0
        assert st["repro_scales_total"]["samples"][""] >= 1.0
        assert st["repro_reach_calls_total"]["samples"][""] >= 1.0
        assert st["repro_reach_rounds_total"]["samples"][""] >= 1.0
        assert st["repro_peel_rounds_total"]["samples"][""] >= 1.0
        assert st["repro_refine_calls_total"]["samples"][""] >= 1.0
        assert st["repro_solve_work"]["samples"][""]["count"] == 1
        assert st["repro_solve_span_model"]["samples"][""]["count"] == 1
        # the gauge tracks the last (finest) scale level
        assert st["repro_scale_current"]["samples"][""] == 1.0

    def test_negative_cycle_outcome(self):
        g = random_digraph(20, 50, min_w=-3, max_w=9, seed=5)
        reg = MetricsRegistry()
        with metering(reg):
            res = solve_sssp(g, 0, seed=7)
        assert res.has_negative_cycle
        assert reg.state()["repro_solves_total"]["samples"][
            "mode=parallel,outcome=negative_cycle"] == 1.0

    def test_checkpoint_bytes_metric(self, tmp_path):
        g = hidden_potential_graph(24, 70, seed=2)
        reg = MetricsRegistry()
        with metering(reg):
            scaled_reweighting(g, seed=7,
                               checkpoint_path=str(tmp_path / "ck.bin"))
        st = reg.state()
        assert st["repro_checkpoint_writes_total"]["samples"][""] >= 1.0
        assert st["repro_checkpoint_bytes_total"]["samples"][""] > 0.0

    def test_metrics_match_model_costs(self):
        """The histogram-observed solve work equals the returned cost —
        the registry and the cost accumulator are one ledger."""
        g = hidden_potential_graph(16, 40, seed=1)
        reg = MetricsRegistry()
        with metering(reg):
            res = solve_sssp(g, 0, seed=7)
        hist = reg.state()["repro_solve_work"]["samples"][""]
        assert hist["sum"] == pytest.approx(res.cost.work)

    def test_disabled_leaves_no_trace(self):
        g = hidden_potential_graph(16, 40, seed=1)
        solve_sssp(g, 0, seed=7)
        assert current_metrics() is None


# ---------------------------------------------------------------------------
# concurrent-scrape safety (the /metrics torn-read hammer)
# ---------------------------------------------------------------------------

class TestConcurrentScrape:
    def test_scrape_hammer_never_tears_a_histogram(self):
        """Writers bump counters and observe histograms while readers
        snapshot continuously; every snapshot must be internally
        consistent (``sum(bucket deltas) == count``, exposition text
        parseable) and the final totals exact."""
        import threading

        reg = MetricsRegistry()
        writers, rounds = 4, 300
        start = threading.Barrier(writers + 2)
        stop = threading.Event()
        errors: list[Exception] = []

        def write(wid: int):
            start.wait()
            for i in range(rounds):
                reg.inc("repro_test_hammer_total", 1.0, writer=str(wid))
                reg.observe("repro_test_hammer_obs", float(i % 7))

        def read():
            start.wait()
            while not stop.is_set():
                try:
                    for fam in parse_prometheus_text(
                            reg.to_prometheus()).families():
                        for _, child in fam.samples():
                            if hasattr(child, "bucket_counts"):
                                assert sum(child.bucket_counts) \
                                    == child.count
                    st = reg.state()
                    hist = st.get("repro_test_hammer_obs")
                    if hist:
                        for sample in hist["samples"].values():
                            # per-bucket counts must sum to the count
                            assert sum(sample["bucket_counts"]) \
                                == sample["count"]
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(writers)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads[:writers]:
            t.join()
        stop.set()
        for t in threads[writers:]:
            t.join(5.0)
        assert not errors
        st = reg.state()
        assert sum(st["repro_test_hammer_total"]["samples"].values()) \
            == writers * rounds
        assert st["repro_test_hammer_obs"]["samples"][""]["count"] \
            == writers * rounds
