"""Tests for multisource reachability and SCC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, random_digraph
from repro.reach import (
    bfs_parents,
    multisource_reachability,
    path_from_parents,
    reachable_mask,
    scc,
    scc_sequential,
)
from repro.runtime import CostAccumulator


def naive_reachable(g: DiGraph, sources) -> np.ndarray:
    seen = np.zeros(g.n, dtype=bool)
    stack = list(sources)
    seen[list(sources)] = True
    while stack:
        u = stack.pop()
        for v in g.successors(u).tolist():
            if not seen[v]:
                seen[v] = True
                stack.append(v)
    return seen


class TestMultisourceReachability:
    def test_single_source_chain(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (1, 2, 0)])
        res = multisource_reachability(g, np.array([0]))
        assert res.pi.tolist() == [0, 0, 0, -1]
        assert res.rounds >= 2

    def test_sources_map_to_themselves(self):
        g = DiGraph.from_edges(3, [(0, 1, 0)])
        res = multisource_reachability(g, np.array([0, 2]))
        assert res.pi[0] == 0 and res.pi[2] == 2

    def test_empty_sources(self):
        g = DiGraph.from_edges(3, [(0, 1, 0)])
        res = multisource_reachability(g, np.array([], dtype=np.int64))
        assert (res.pi == -1).all()

    def test_pi_is_valid_ancestor(self):
        g = random_digraph(40, 160, seed=0)
        sources = np.array([0, 5, 9])
        res = multisource_reachability(g, sources)
        for v in range(g.n):
            p = int(res.pi[v])
            if p >= 0:
                assert p in sources
                assert naive_reachable(g, [p])[v]

    def test_coverage_matches_naive(self):
        g = random_digraph(50, 200, seed=1)
        sources = np.array([3, 17])
        res = multisource_reachability(g, sources)
        np.testing.assert_array_equal(res.pi >= 0,
                                      naive_reachable(g, sources))

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            multisource_reachability(DiGraph.from_edges(2, []),
                                     np.array([5]))

    def test_cost_charged_with_oracle_span(self):
        g = random_digraph(64, 256, seed=2)
        acc = CostAccumulator()
        multisource_reachability(g, np.array([0]), acc)
        assert acc.work > 0
        # model span is the black-box bound, one charge per call
        assert acc.span_model == pytest.approx(
            np.sqrt(64) * np.log2(66), rel=0.01)

    def test_reachable_mask(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (2, 3, 0)])
        mask = reachable_mask(g, np.array([0]))
        assert mask.tolist() == [True, True, False, False]

    @given(st.integers(0, 1000), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_naive(self, seed, k):
        g = random_digraph(20, 60, seed=seed)
        rng = np.random.default_rng(seed)
        sources = rng.choice(20, size=k, replace=False)
        res = multisource_reachability(g, sources)
        np.testing.assert_array_equal(res.pi >= 0,
                                      naive_reachable(g, sources))


class TestBfsParents:
    def test_path_reconstruction(self):
        g = DiGraph.from_edges(5, [(0, 1, 0), (1, 2, 0), (2, 3, 0)])
        parent = bfs_parents(g, 0)
        assert path_from_parents(parent, 0, 3) == [0, 1, 2, 3]

    def test_unreachable_none(self):
        g = DiGraph.from_edges(3, [(0, 1, 0)])
        parent = bfs_parents(g, 0)
        assert path_from_parents(parent, 0, 2) is None

    def test_source_to_itself(self):
        g = DiGraph.from_edges(2, [(0, 1, 0)])
        parent = bfs_parents(g, 0)
        assert path_from_parents(parent, 0, 0) == [0]

    def test_parents_form_edges(self):
        g = random_digraph(30, 120, seed=3)
        parent = bfs_parents(g, 0)
        for v in range(g.n):
            p = int(parent[v])
            if p >= 0:
                assert g.has_edge(p, v)


class TestScc:
    def check_against_tarjan(self, g):
        par = scc(g).comp
        seq = scc_sequential(g).comp
        # same partition: components induce identical equivalence classes
        n = g.n
        for u in range(n):
            for v in range(u + 1, n):
                assert (par[u] == par[v]) == (seq[u] == seq[v]), (u, v)

    def test_two_cycles(self):
        g = DiGraph.from_edges(5, [(0, 1, 0), (1, 0, 0), (2, 3, 0),
                                   (3, 4, 0), (4, 2, 0), (1, 2, 0)])
        res = scc(g)
        assert res.n_components == 2
        assert res.comp[0] == res.comp[1]
        assert res.comp[2] == res.comp[3] == res.comp[4]
        assert res.comp[0] != res.comp[2]

    def test_dag_all_singletons(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 3, 0)])
        assert scc(g).n_components == 4

    def test_self_loop_singleton(self):
        g = DiGraph.from_edges(2, [(0, 0, 0), (0, 1, 0)])
        res = scc(g)
        assert res.n_components == 2

    def test_empty_graph(self):
        res = scc(DiGraph.from_edges(0, []))
        assert res.n_components == 0

    def test_isolated_vertices(self):
        res = scc(DiGraph.from_edges(3, []))
        assert res.n_components == 3
        assert sorted(res.comp.tolist()) == [0, 1, 2]

    def test_component_ids_contiguous(self):
        g = random_digraph(30, 90, seed=4)
        res = scc(g)
        assert sorted(set(res.comp.tolist())) == list(range(res.n_components))

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_tarjan_random(self, seed):
        g = random_digraph(25, 70 + 10 * seed, seed=seed)
        self.check_against_tarjan(g)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_matches_tarjan_property(self, seed):
        g = random_digraph(14, 30, seed=seed)
        self.check_against_tarjan(g)

    def test_cost_accumulates(self):
        g = random_digraph(40, 120, seed=5)
        acc = CostAccumulator()
        scc(g, acc)
        assert acc.work > 0 and acc.span_model > 0


class TestSccSequentialOnly:
    def test_big_cycle(self):
        n = 200
        edges = [(i, (i + 1) % n, 0) for i in range(n)]
        res = scc_sequential(DiGraph.from_edges(n, edges))
        assert res.n_components == 1

    def test_chain(self):
        n = 100
        edges = [(i, i + 1, 0) for i in range(n - 1)]
        res = scc_sequential(DiGraph.from_edges(n, edges))
        assert res.n_components == n
