"""Reusable cross-engine differential driver (tests only).

The contract under test: every engine in the SSSP registry
(:mod:`repro.core.engines`), on the same ``(graph, source, seed)``,
either returns **bit-identical distances** (any feasible potential
yields the same distances through the shared reduced-Dijkstra tail) or
the same **negative-cycle verdict** with an independently verified
certificate.  The driver knows how to

* run any engine uniformly (plain or through the resilient wrapper,
  on any backend, with any fault plan) — :func:`run_engine`;
* assert full cross-engine agreement and, on the first disagreement,
  **commit the offending graph as a DIMACS regression fixture** under
  ``tests/fixtures/differential/`` before failing —
  :func:`assert_engines_agree`.  Because the dump happens on every
  failing call, a shrinking Hypothesis run overwrites the fixture each
  step and the file left behind is the *minimal* disagreeing graph;
* build the standard graph-family sweep — :func:`graph_family_sweep`;
* read the CI-configurable pool-size matrix — :func:`pool_sizes`
  (``REPRO_DIFF_POOL_SIZES``, comma-separated, default ``2``).
"""

from __future__ import annotations

import os
import pathlib
import re

import numpy as np

from repro.core.engines import (
    REFERENCE_ENGINE,
    engine_names,
    get_sssp_engine,
)
from repro.core.sssp import SsspResult, solve_sssp_resilient
from repro.graph.generators import (
    bf_hard_graph,
    hidden_potential_graph,
    layered_dag,
    planted_negative_cycle_graph,
    random_dag,
    random_digraph,
    zero_heavy_digraph,
)
from repro.graph.io import dumps_dimacs
from repro.resilience.errors import Certificate

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures" / "differential"

ALL_ENGINES = tuple(engine_names())
NON_REFERENCE_ENGINES = tuple(e for e in ALL_ENGINES
                              if e != REFERENCE_ENGINE)


def pool_sizes() -> tuple[int, ...]:
    """Worker counts the backend-matrix tests run at.  CI's differential
    job sets ``REPRO_DIFF_POOL_SIZES=1,4``; the local default keeps the
    suite fast."""
    raw = os.environ.get("REPRO_DIFF_POOL_SIZES", "2")
    sizes = tuple(int(s) for s in raw.split(",") if s.strip())
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"bad REPRO_DIFF_POOL_SIZES={raw!r}")
    return sizes


def run_engine(name: str, g, source: int = 0, *, seed=0, backend=None,
               fault_plan=None, resilient: bool = False,
               **kwargs) -> SsspResult:
    """One engine solve through the uniform interface.

    ``resilient=True`` routes through :func:`solve_sssp_resilient`
    (retry/fallback machinery engaged — required for fault plans that
    must be *healed*, not merely detected)."""
    if resilient:
        return solve_sssp_resilient(g, source, engine=name, seed=seed,
                                    backend=backend,
                                    fault_plan=fault_plan, **kwargs)
    return get_sssp_engine(name).solve(g, source, seed=seed,
                                       backend=backend,
                                       fault_plan=fault_plan, **kwargs)


def dump_disagreement(g, label: str, note: str = "") -> pathlib.Path:
    """Persist ``g`` as ``tests/fixtures/differential/<label>.gr``.

    Called on every agreement failure, so a shrinking property run
    leaves the minimal counterexample behind; commit the file and the
    replay test (``test_committed_fixtures_replay``) keeps it as a
    permanent regression."""
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", label).strip("-") or "case"
    path = FIXTURE_DIR / f"{slug}.gr"
    comments = ["differential-harness disagreement fixture"]
    if note:
        comments.append(note)
    path.write_text(dumps_dimacs(g, comments=comments))
    return path


def _verify_cycle_independently(g, res: SsspResult) -> bool:
    """Re-check the cycle certificate with a *fresh* Certificate object
    (not the one the engine attached)."""
    return Certificate(
        "negative_cycle", cycle=list(res.negative_cycle)).verify(g)


def assert_engines_agree(g, source: int = 0, *, seed=0,
                         engines=None, backend=None, label: str = "case",
                         ) -> dict[str, SsspResult]:
    """Solve with every engine; fail (and dump a fixture) on the first
    divergence from the reference engine.  Returns all results."""
    names = list(engines) if engines is not None else list(ALL_ENGINES)
    if REFERENCE_ENGINE in names:  # reference first, others compare to it
        names.remove(REFERENCE_ENGINE)
        names.insert(0, REFERENCE_ENGINE)
    results: dict[str, SsspResult] = {}
    ref_name = names[0]
    ref = results[ref_name] = run_engine(ref_name, g, source, seed=seed,
                                         backend=backend)
    for name in names[1:]:
        res = results[name] = run_engine(name, g, source, seed=seed,
                                         backend=backend)
        if res.has_negative_cycle != ref.has_negative_cycle:
            path = dump_disagreement(
                g, label, note=f"verdict split: {ref_name}="
                f"{ref.has_negative_cycle} {name}={res.has_negative_cycle}")
            raise AssertionError(
                f"cycle-verdict disagreement between {ref_name} and "
                f"{name} on {label} (source={source}, seed={seed}); "
                f"graph committed to {path}")
        if res.has_negative_cycle:
            assert _verify_cycle_independently(g, res), \
                f"{name}: invalid cycle certificate on {label}"
            continue
        if not np.array_equal(ref.dist, res.dist):
            bad = np.flatnonzero(~np.isclose(ref.dist, res.dist,
                                             equal_nan=True))
            path = dump_disagreement(
                g, label, note=f"distance split {ref_name} vs {name} at "
                f"vertices {bad[:8].tolist()}")
            raise AssertionError(
                f"distance disagreement between {ref_name} and {name} on "
                f"{label} (source={source}, seed={seed}, vertices "
                f"{bad[:8].tolist()}); graph committed to {path}")
    if ref.has_negative_cycle:
        assert _verify_cycle_independently(g, ref), \
            f"{ref_name}: invalid cycle certificate on {label}"
    return results


def graph_family_sweep(seed: int = 0, n: int = 64) -> dict:
    """The standard family matrix: structurally different graphs, all
    with negative edges somewhere, plus cycle and disconnection cases."""
    rng_n = max(n, 8)
    return {
        "hidden-potential": hidden_potential_graph(
            rng_n, 4 * rng_n, potential_spread=16, seed=seed),
        "bf-hard": bf_hard_graph(rng_n, 3 * rng_n, seed=seed),
        "random-mixed": random_digraph(rng_n, 4 * rng_n, min_w=-4,
                                       max_w=9, seed=seed),
        "zero-heavy": zero_heavy_digraph(rng_n, 4 * rng_n, seed=seed),
        "layered-dagish": random_dag(rng_n, 4 * rng_n,
                                     weights=(-2, -1, 0, 3), seed=seed),
        "deep-layered": layered_dag(max(rng_n // 8, 3), 8,
                                    p_negative=0.4, seed=seed),
        "planted-cycle": planted_negative_cycle_graph(
            rng_n, 4 * rng_n, 5, seed=seed)[0],
        "disconnected": _disconnected_graph(rng_n, seed),
    }


def _disconnected_graph(n: int, seed: int):
    """Two halves with no edges between them: every vertex of the far
    half is unreachable (``inf``), exercising the inf-handling of the
    map-back in every engine."""
    half = hidden_potential_graph(n // 2, 2 * n, potential_spread=8,
                                  seed=seed)
    from repro.graph import DiGraph

    return DiGraph(n, half.src, half.dst, half.w)


def committed_fixtures() -> list[pathlib.Path]:
    """All committed regression fixtures, sorted for determinism."""
    if not FIXTURE_DIR.is_dir():
        return []
    return sorted(FIXTURE_DIR.glob("*.gr"))
