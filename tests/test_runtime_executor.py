"""Tests for the optional fork-join thread executor."""

import threading
import time

import numpy as np
import pytest

from repro.resilience import CancelToken, Deadline, cancel_scope
from repro.resilience.errors import CancelledError, DeadlineExceededError
from repro.runtime import ForkJoinPool, default_pool


class TestForkJoinPool:
    def test_sequential_fallback(self):
        out = np.zeros(10)
        with ForkJoinPool(n_workers=1) as pool:
            pool.parallel_for(10, lambda lo, hi: out.__setitem__(
                slice(lo, hi), np.arange(lo, hi)))
        np.testing.assert_array_equal(out, np.arange(10))

    def test_threaded_blocks_disjoint(self):
        n = 50_000
        out = np.zeros(n, dtype=np.int64)

        def body(lo, hi):
            out[lo:hi] = np.arange(lo, hi)

        with ForkJoinPool(n_workers=4) as pool:
            pool.parallel_for(n, body, grain=1000)
        np.testing.assert_array_equal(out, np.arange(n))

    def test_empty_range(self):
        called = []
        with ForkJoinPool(n_workers=2) as pool:
            pool.parallel_for(0, lambda lo, hi: called.append((lo, hi)))
        assert called == []

    def test_small_range_single_call(self):
        calls = []
        with ForkJoinPool(n_workers=4) as pool:
            pool.parallel_for(10, lambda lo, hi: calls.append((lo, hi)),
                              grain=1024)
        assert calls == [(0, 10)]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ForkJoinPool(n_workers=0)

    def test_exception_propagates(self):
        def body(lo, hi):
            raise RuntimeError("boom")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(RuntimeError):
                pool.parallel_for(10_000, body, grain=10)

    def test_default_pool_singleton(self):
        assert default_pool() is default_pool()


class TestErrorHandling:
    """Satellite: first failure cancels pending blocks and is re-raised."""

    def test_first_exception_in_submission_order_wins(self):
        barrier = threading.Barrier(2, timeout=5)

        def body(lo, hi):
            # two workers fail "simultaneously"; the re-raised error must
            # be the earliest *block's*, independent of wall-clock order
            barrier.wait()
            if lo == 0:
                time.sleep(0.05)
                raise ValueError("block-0")
            raise KeyError("block-1")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(ValueError, match="block-0"):
                pool.parallel_for(2_000, body, grain=10)

    def test_failure_cancels_not_yet_started_blocks(self):
        ran = []
        lock = threading.Lock()
        release = threading.Event()

        def body(lo, hi):
            if lo == 0:
                raise RuntimeError("early failure")
            release.wait(timeout=5)
            with lock:
                ran.append(lo)

        # 8 blocks on 1 pooled worker thread... use 2 workers, 8 blocks:
        # the failure in block 0 must cancel the queued tail even though
        # one long block is still draining
        pool = ForkJoinPool(n_workers=2)
        try:
            t = threading.Timer(0.1, release.set)
            t.start()
            with pytest.raises(RuntimeError, match="early failure"):
                pool.parallel_for(8_000, body, grain=10)
            t.join()
            # the queued tail was cancelled: of the 7 non-failing blocks,
            # only the ones a worker had already picked up (at most one
            # per worker) may complete
            assert len(ran) <= 2
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = ForkJoinPool(n_workers=2)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error

    def test_parallel_for_after_shutdown_raises(self):
        pool = ForkJoinPool(n_workers=2)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            pool.parallel_for(10, lambda lo, hi: None)

    def test_context_manager_shuts_down(self):
        with ForkJoinPool(n_workers=2) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.parallel_for(10, lambda lo, hi: None)


class TestCancellation:
    """Satellite/tentpole: the pool is cancellation-aware."""

    def test_precancelled_token_raises_before_any_block(self):
        tok = CancelToken()
        tok.cancel("stop")
        calls = []
        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(CancelledError):
                pool.parallel_for(10_000, lambda lo, hi: calls.append(lo),
                                  grain=10, token=tok)
        assert calls == []

    def test_expired_deadline_raises_deadline_error(self):
        tok = CancelToken(Deadline(0.0, clock=lambda: 1.0))
        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(DeadlineExceededError):
                pool.parallel_for(10_000, lambda lo, hi: None,
                                  grain=10, token=tok)

    def test_cancel_stops_dispatch_and_raises_after_drain(self, monkeypatch):
        tok = CancelToken()
        pool = ForkJoinPool(n_workers=2)
        real_submit = pool._pool.submit
        submitted = []

        def counting_submit(fn, lo, hi):
            f = real_submit(fn, lo, hi)
            submitted.append(lo)
            if len(submitted) == 1:  # cancel mid-dispatch
                tok.cancel("mid-dispatch stop")
            return f

        monkeypatch.setattr(pool._pool, "submit", counting_submit)
        try:
            with pytest.raises(CancelledError):
                # 2 workers and tiny grain would normally dispatch 2 blocks
                pool.parallel_for(4_000, lambda lo, hi: None, grain=10,
                                  token=tok)
            assert len(submitted) == 1  # dispatch stopped at the cancel
        finally:
            pool.shutdown()

    def test_body_cancel_still_raises_after_completion(self):
        tok = CancelToken()
        done = []

        def body(lo, hi):
            done.append(lo)
            tok.cancel("from inside")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(CancelledError):
                pool.parallel_for(4_000, body, grain=10, token=tok)
        assert done  # blocks that started drained cleanly

    def test_ambient_token_via_cancel_scope(self):
        tok = CancelToken()
        tok.cancel("ambient")
        with ForkJoinPool(n_workers=2) as pool:
            with cancel_scope(tok):
                with pytest.raises(CancelledError):
                    pool.parallel_for(10_000, lambda lo, hi: None, grain=10)
            pool.parallel_for(100, lambda lo, hi: None)  # scope popped


class TestDefaultPoolRecovery:
    """Satellite: ``shutdown()`` on the default pool must not leave the
    module-global permanently broken — the next caller gets a fresh one."""

    def test_default_pool_recreated_after_shutdown(self):
        first = default_pool()
        first.shutdown()
        second = default_pool()
        assert second is not first
        assert not second._closed
        # and it actually works
        hits = []
        second.parallel_for(10, lambda lo, hi: hits.append((lo, hi)),
                            grain=100)
        assert hits == [(0, 10)]

    def test_default_pool_survives_context_manager_exit(self):
        with default_pool():
            pass  # __exit__ shut it down
        pool = default_pool()
        assert not pool._closed
        assert pool is default_pool()  # and it is a stable singleton again


class TestTracebackPreservation:
    """Satellite: a block's exception reaches the caller with the
    block-frame traceback intact, not an opaque re-raise."""

    def test_block_frame_visible_in_traceback(self):
        import traceback

        def exploding_block_body(lo, hi):
            raise ValueError(f"kaboom in [{lo}, {hi})")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(ValueError, match="kaboom") as ei:
                pool.parallel_for(4_000, exploding_block_body, grain=10)
        frames = traceback.format_exception(
            ei.type, ei.value, ei.value.__traceback__)
        text = "".join(frames)
        assert "exploding_block_body" in text
        assert "kaboom in" in text

    def test_map_blocks_preserves_traceback_too(self):
        import traceback

        def exploding_map_block(lo, hi):
            raise KeyError("map-kaboom")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(KeyError) as ei:
                pool.map_blocks(4_000, exploding_map_block, grain=10)
        text = "".join(traceback.format_exception(
            ei.type, ei.value, ei.value.__traceback__))
        assert "exploding_map_block" in text


class TestMapBlocksThreaded:
    """The thread pool's side of the portable ``map_blocks`` contract."""

    def test_results_concatenate_in_order(self):
        arr = np.arange(1000)
        with ForkJoinPool(n_workers=4) as pool:
            out = pool.map_blocks(1000, lambda lo, hi: arr[lo:hi] * 2,
                                  grain=100)
        assert len(out) > 1
        assert np.array_equal(np.concatenate(out), arr * 2)

    def test_small_n_runs_inline(self):
        ident = threading.get_ident()
        seen = []

        def body(lo, hi):
            seen.append(threading.get_ident())
            return hi - lo

        with ForkJoinPool(n_workers=4) as pool:
            assert pool.map_blocks(50, body, grain=100) == [50]
        assert seen == [ident]  # caller thread, no dispatch

    def test_precancelled_token_raises(self):
        tok = CancelToken()
        tok.cancel("stop")
        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(CancelledError):
                pool.map_blocks(1000, lambda lo, hi: None, grain=10,
                                token=tok)

    def test_after_shutdown_raises(self):
        pool = ForkJoinPool(n_workers=2)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            pool.map_blocks(10, lambda lo, hi: None)

    def test_thread_backend_surface(self):
        with ForkJoinPool(n_workers=2) as pool:
            assert pool.name == "thread"
            assert pool.supports_shared_memory is True
