"""Tests for the optional fork-join thread executor."""

import numpy as np
import pytest

from repro.runtime import ForkJoinPool, default_pool


class TestForkJoinPool:
    def test_sequential_fallback(self):
        out = np.zeros(10)
        with ForkJoinPool(n_workers=1) as pool:
            pool.parallel_for(10, lambda lo, hi: out.__setitem__(
                slice(lo, hi), np.arange(lo, hi)))
        np.testing.assert_array_equal(out, np.arange(10))

    def test_threaded_blocks_disjoint(self):
        n = 50_000
        out = np.zeros(n, dtype=np.int64)

        def body(lo, hi):
            out[lo:hi] = np.arange(lo, hi)

        with ForkJoinPool(n_workers=4) as pool:
            pool.parallel_for(n, body, grain=1000)
        np.testing.assert_array_equal(out, np.arange(n))

    def test_empty_range(self):
        called = []
        with ForkJoinPool(n_workers=2) as pool:
            pool.parallel_for(0, lambda lo, hi: called.append((lo, hi)))
        assert called == []

    def test_small_range_single_call(self):
        calls = []
        with ForkJoinPool(n_workers=4) as pool:
            pool.parallel_for(10, lambda lo, hi: calls.append((lo, hi)),
                              grain=1024)
        assert calls == [(0, 10)]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ForkJoinPool(n_workers=0)

    def test_exception_propagates(self):
        def body(lo, hi):
            raise RuntimeError("boom")

        with ForkJoinPool(n_workers=2) as pool:
            with pytest.raises(RuntimeError):
                pool.parallel_for(10_000, body, grain=10)

    def test_default_pool_singleton(self):
        assert default_pool() is default_pool()
