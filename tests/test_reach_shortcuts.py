"""Tests for hub shortcutting (span/work trade-off demonstration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, bf_hard_graph, random_digraph
from repro.reach import (
    build_hub_shortcuts,
    multisource_reachability,
    multisource_reachability_shortcut,
)
from repro.runtime import CostAccumulator


def reach_mask(g, sources):
    return multisource_reachability(g, np.asarray(sources)).pi >= 0


class TestBuildHubShortcuts:
    def test_preserves_reachability(self):
        g = random_digraph(40, 120, seed=0)
        sc = build_hub_shortcuts(g, 6, seed=0)
        for s in (0, 7, 23):
            np.testing.assert_array_equal(reach_mask(g, [s]),
                                          reach_mask(sc.graph, [s]))

    def test_no_hubs_is_identity(self):
        g = random_digraph(20, 60, seed=1)
        sc = build_hub_shortcuts(g, 0, seed=1)
        assert sc.added_edges == 0
        assert sc.graph.m == g.m

    def test_negative_hub_count(self):
        g = random_digraph(10, 20, seed=2)
        with pytest.raises(ValueError):
            build_hub_shortcuts(g, -1)

    def test_hub_count_capped_at_n(self):
        g = random_digraph(5, 10, seed=3)
        sc = build_hub_shortcuts(g, 50, seed=3)
        assert len(sc.hubs) == 5

    def test_cost_charged(self):
        g = random_digraph(30, 90, seed=4)
        acc = CostAccumulator()
        build_hub_shortcuts(g, 4, seed=4, acc=acc)
        assert acc.work > 0

    @given(st.integers(0, 3000), st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_reachability_equivalent(self, seed, hubs):
        g = random_digraph(15, 45, seed=seed)
        sc = build_hub_shortcuts(g, hubs, seed=seed)
        np.testing.assert_array_equal(reach_mask(g, [0]),
                                      reach_mask(sc.graph, [0]))


class TestShortcutReachability:
    def test_same_coverage_as_plain(self):
        g = bf_hard_graph(300, 600, seed=5)
        plain = multisource_reachability(g, np.array([0]))
        fast = multisource_reachability_shortcut(g, np.array([0]), 8,
                                                 seed=5)
        np.testing.assert_array_equal(plain.pi >= 0, fast.pi >= 0)

    def test_rounds_collapse_on_path_graphs(self):
        """The point of shortcutting: BFS rounds drop from Θ(n) to O(1)-ish
        once hubs cover the path."""
        n = 500
        g = DiGraph.from_edges(n, [(i, i + 1, 0) for i in range(n - 1)])
        plain = multisource_reachability(g, np.array([0]))
        fast = multisource_reachability_shortcut(g, np.array([0]), 10,
                                                 seed=0)
        assert plain.rounds >= n - 1
        assert fast.rounds < plain.rounds / 10
        np.testing.assert_array_equal(plain.pi >= 0, fast.pi >= 0)

    def test_work_grows_with_hubs(self):
        """The other side of the trade: more hubs, more shortcut edges."""
        g = bf_hard_graph(400, 800, seed=6)
        small = build_hub_shortcuts(g, 2, seed=6)
        big = build_hub_shortcuts(g, 20, seed=6)
        assert big.added_edges > small.added_edges
