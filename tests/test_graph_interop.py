"""Tests for networkx/scipy interop (optional dependencies, test-only)."""

import numpy as np
import pytest

from repro.baselines import bellman_ford
from repro.graph import (
    DiGraph,
    from_networkx,
    from_scipy_sparse,
    hidden_potential_graph,
    to_networkx,
    to_scipy_sparse,
)


class TestNetworkx:
    def test_roundtrip(self):
        g = hidden_potential_graph(20, 80, seed=0)
        g2 = from_networkx(to_networkx(g))
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_arbitrary_node_labels(self):
        import networkx as nx

        G = nx.DiGraph()
        G.add_edge("a", "b", weight=3)
        G.add_edge("b", "c", weight=-1)
        g = from_networkx(G)
        assert g.n == 3 and g.m == 2
        assert sorted(g.w.tolist()) == [-1, 3]

    def test_default_weight(self):
        import networkx as nx

        G = nx.DiGraph()
        G.add_edge(0, 1)
        assert from_networkx(G, default=5).w.tolist() == [5]

    def test_rejects_float_weight(self):
        import networkx as nx

        G = nx.DiGraph()
        G.add_edge(0, 1, weight=1.5)
        with pytest.raises(ValueError, match="non-integer"):
            from_networkx(G)

    def test_solver_agrees_with_networkx_graph(self):
        g = hidden_potential_graph(15, 60, seed=1)
        import networkx as nx

        G = to_networkx(g)
        lengths = nx.single_source_bellman_ford_path_length(G, 0)
        res = bellman_ford(g, 0)
        for v, d in lengths.items():
            assert res.dist[v] == d


class TestScipy:
    def test_roundtrip(self):
        g = DiGraph.from_edges(4, [(0, 1, 5), (2, 3, -2), (1, 2, 0)])
        m = to_scipy_sparse(g)
        g2 = from_scipy_sparse(m)
        # note: the 0-weight edge survives as an explicit entry
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_parallel_edges_collapse_to_min(self):
        g = DiGraph.from_edges(2, [(0, 1, 7), (0, 1, 3)])
        m = to_scipy_sparse(g)
        assert m[0, 1] == 3

    def test_empty(self):
        g = DiGraph.from_edges(3, [])
        assert to_scipy_sparse(g).nnz == 0
        assert from_scipy_sparse(to_scipy_sparse(g)).n == 3

    def test_rejects_nonsquare(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="square"):
            from_scipy_sparse(sp.csr_matrix((2, 3)))

    def test_rejects_float_weights(self):
        import scipy.sparse as sp

        m = sp.csr_matrix(np.array([[0, 1.5], [0, 0]]))
        with pytest.raises(ValueError, match="integers"):
            from_scipy_sparse(m)

    def test_scipy_shortest_path_agrees(self):
        import scipy.sparse.csgraph as csgraph

        g = DiGraph.from_edges(4, [(0, 1, 2), (1, 2, 3), (0, 2, 9),
                                   (2, 3, 1)])
        m = to_scipy_sparse(g)
        d = csgraph.dijkstra(m, indices=0)
        from repro.baselines import dijkstra

        np.testing.assert_array_equal(d, dijkstra(g, 0).dist)
