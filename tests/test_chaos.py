"""Chaos suite: solves on the graph-family sweep while workers are
being killed, and the answers must not change.

Every test here asserts the headline robustness property: under a
``worker_kill`` fault rate of 0.2 (or an external SIGKILL injector),
each solve completes — via block re-dispatch or a recorded demotion —
and the distances are bit-identical to the serial backend.

Pool sizes come from ``REPRO_CHAOS_POOL_SIZES`` (comma-separated,
default ``"2"``; CI's chaos job sets ``"2,4"``).  When
``REPRO_CHAOS_ARTIFACT_DIR`` is set, each sweep writes its
:class:`~repro.resilience.retry.SolveProvenance` documents there as
JSON for upload.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sssp import solve_sssp_resilient
from repro.graph.generators import (
    bf_hard_graph,
    hidden_potential_graph,
    random_dag,
    random_digraph,
    zero_heavy_digraph,
)
from repro.resilience.faults import FaultPlan
from repro.runtime.backends import (
    DegradationLadder,
    ProcessForkJoinPool,
    SerialBackend,
)
from repro.runtime.executor import ForkJoinPool

pytestmark = pytest.mark.chaos

KILL_RATE = 0.2
GRAIN = 16  # small enough that every family's edge array spans blocks


def chaos_pool_sizes() -> list[int]:
    raw = os.environ.get("REPRO_CHAOS_POOL_SIZES", "2")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def graph_families() -> list[tuple[str, object]]:
    return [
        ("bf-hard", bf_hard_graph(60, 240, seed=7)),
        ("hidden-potential", hidden_potential_graph(40, 220, seed=11)),
        ("random-neg", random_digraph(50, 230, min_w=-3, max_w=9,
                                      seed=13)),
        ("dag", random_dag(60, 240, seed=17)),
        ("zero-heavy", zero_heavy_digraph(50, 230, seed=19)),
    ]


def serial_reference(g, seed=7):
    with SerialBackend(grain=GRAIN) as be:
        return solve_sssp_resilient(g, 0, seed=seed, backend=be)


def chaos_ladder(pool_size: int) -> DegradationLadder:
    return DegradationLadder.for_backend(
        "process", n_workers=pool_size, grain=GRAIN,
        heartbeat_interval=0.02, liveness_timeout=0.5,
        backoff_base=0.01, backoff_cap=0.05)


def maybe_write_artifact(name: str, doc: dict) -> None:
    art_dir = os.environ.get("REPRO_CHAOS_ARTIFACT_DIR")
    if not art_dir:
        return
    path = Path(art_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True))


@pytest.mark.parametrize("pool_size", chaos_pool_sizes())
def test_worker_kill_sweep_bit_identical_to_serial(pool_size):
    sweep = []
    for fam, g in graph_families():
        ref = serial_reference(g)
        plan = FaultPlan.with_rate(KILL_RATE, sites=("worker_kill",),
                                   seed=pool_size * 1000 + len(fam))
        with chaos_ladder(pool_size) as lad:
            res = solve_sssp_resilient(g, 0, seed=7, backend=lad,
                                       fault_plan=plan)
            tele = lad.telemetry()
        # the solve completed — via recovery or a recorded demotion —
        # and the distances did not move by a single bit
        assert np.array_equal(res.dist, ref.dist), fam
        assert bool(res.has_negative_cycle) == bool(
            ref.has_negative_cycle), fam
        prov = res.provenance.to_json()
        assert prov["backend"] in ("process", "thread", "serial")
        # every worker loss the pool absorbed is listed in provenance
        kills = plan.fired("worker_kill")
        losses = prov["worker_losses"]
        if kills and not prov["demotions"]:
            assert losses, f"{fam}: {kills} kills fired but no loss recorded"
        for loss in losses:
            assert loss["kind"] in ("death", "hang")
            assert loss["wid"] >= 0
        assert tele["worker_losses"] == losses
        sweep.append({"family": fam, "pool_size": pool_size,
                      "kills_fired": kills, "provenance": prov})
    assert any(s["kills_fired"] for s in sweep), \
        "chaos sweep never injected a fault — rate/seed mismatch"
    maybe_write_artifact(f"chaos-worker-kill-pool{pool_size}",
                         {"schema": "repro-chaos/1", "rate": KILL_RATE,
                          "solves": sweep})


@pytest.mark.parametrize("pool_size", chaos_pool_sizes())
def test_external_sigkill_sweep_bit_identical_to_serial(pool_size):
    fam, g = graph_families()[0]
    ref = serial_reference(g)
    pool = ProcessForkJoinPool(
        pool_size, grain=GRAIN, heartbeat_interval=0.02,
        liveness_timeout=0.5, backoff_base=0.01, backoff_cap=0.05)
    lad = DegradationLadder([
        ("process", pool),
        ("thread", lambda: ForkJoinPool(pool_size)),
        ("serial", SerialBackend),
    ])
    stop = threading.Event()
    killed = []

    def killer():
        # keep shooting workers in the head until the solve finishes
        while not stop.is_set():
            for pid in pool.worker_pids():
                try:
                    os.kill(pid, signal.SIGKILL)
                    killed.append(pid)
                except ProcessLookupError:
                    pass
                break  # one victim per volley
            time.sleep(0.03)

    t = threading.Thread(target=killer)
    with lad:
        t.start()
        try:
            res = solve_sssp_resilient(g, 0, seed=7, backend=lad)
        finally:
            stop.set()
            t.join()
        tele = lad.telemetry()
    assert np.array_equal(res.dist, ref.dist)
    prov = res.provenance.to_json()
    if killed:
        # every kill surfaced as a recorded loss or forced a recorded
        # demotion — never a silent retry
        assert prov["worker_losses"] or prov["demotions"]
    assert prov["demotions"] == tele["demotions"]
    maybe_write_artifact(
        f"chaos-sigkill-pool{pool_size}",
        {"schema": "repro-chaos/1", "family": fam,
         "external_kills": len(killed), "provenance": prov})


def test_chaos_pool_sizes_env_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_POOL_SIZES", "2, 4 ,8")
    assert chaos_pool_sizes() == [2, 4, 8]
    monkeypatch.delenv("REPRO_CHAOS_POOL_SIZES")
    assert chaos_pool_sizes() == [2]
