"""Tests for the find_negative_cycle convenience API."""

import pytest

from repro.core import find_negative_cycle
from repro.graph import (
    DiGraph,
    hidden_potential_graph,
    planted_negative_cycle_graph,
    validate_negative_cycle,
)


@pytest.mark.parametrize("mode", ["parallel", "sequential"])
class TestFindNegativeCycle:
    def test_none_when_feasible(self, mode):
        g = hidden_potential_graph(20, 90, seed=0)
        assert find_negative_cycle(g, mode=mode) is None

    def test_finds_planted(self, mode):
        g, _ = planted_negative_cycle_graph(20, 80, 3, seed=1)
        cyc = find_negative_cycle(g, mode=mode)
        assert cyc is not None
        assert validate_negative_cycle(g, cyc)

    def test_finds_unreachable_cycle(self, mode):
        # the cycle is nowhere near vertex 0 — detection is global
        g = DiGraph.from_edges(5, [(0, 1, 1), (3, 4, -2), (4, 3, 1)])
        cyc = find_negative_cycle(g, mode=mode)
        assert cyc is not None
        assert set(cyc) <= {3, 4}

    def test_empty_graph(self, mode):
        assert find_negative_cycle(DiGraph.from_edges(3, []),
                                   mode=mode) is None
