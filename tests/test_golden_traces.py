"""Golden-trace regression tests.

Three small canned graphs, each solved with a fixed seed, whose traces
must reproduce a hard-coded *structural skeleton* (the phase sequence
restricted to the scale / reweighting-iteration / dag01 /
chain-elimination / limited-sssp / final-dijkstra spans, with their
discrete attrs), a span-name histogram, and exact integer counter
totals.  Any change to solver control flow — an extra reweighting
iteration, a different dag01 limit schedule, a lost peel round — shows
up here as a readable diff against the embedded literals.

The literals were captured by running the solver once and embedding its
output; they are exact values, not tolerances.  Floating-point totals
are deliberately NOT asserted here (the metamorphic layer in
``test_observability.py`` pins those against the live Meter); golden
data sticks to discrete, platform-independent facts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sssp import solve_sssp
from repro.graph.generators import hidden_potential_graph, random_digraph
from repro.observability import Trace, Tracer, phase_sequence, tracing

pytestmark = pytest.mark.observability

# the structural skeleton: control-flow spans only (reach / peel-round /
# refine spans are covered by the counter totals instead)
SKELETON_NAMES = (
    "scale",
    "reweighting-iteration",
    "dag01",
    "chain-elimination",
    "limited-sssp",
    "final-dijkstra",
    "fallback-bellman-ford",
)

SEED = 7


def _solve_traced(g):
    tr = Tracer()
    with tracing(tr):
        res = solve_sssp(g, 0, seed=SEED)
    return Trace.from_tracer(tr), res


def _counter_totals(trace: Trace) -> dict[str, int]:
    totals: dict[str, int] = {}
    for s in trace.spans:
        for k, v in s.counters.items():
            key = f"{s.name}.{k}"
            totals[key] = totals.get(key, 0) + v
    return totals


def _name_histogram(trace: Trace) -> dict[str, int]:
    hist: dict[str, int] = {}
    for s in trace.spans:
        hist[s.name] = hist.get(s.name, 0) + 1
    return hist


# ---------------------------------------------------------------------------
# golden data
# ---------------------------------------------------------------------------

GOLDEN = {
    # hidden_potential_graph(16, 40, seed=1): feasible, 5 scales
    "hp16": dict(
        make=lambda: hidden_potential_graph(16, 40, seed=1),
        negative_cycle=False,
        skeleton=[
            ("scale", ("scale", 16)),
            ("scale", ("scale", 8)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 1)),
            ("chain-elimination", ("limit", 1)),
            ("limited-sssp", ("limit", 1)),
            ("scale", ("scale", 4)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 3)),
            ("scale", ("scale", 2)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 2)),
            ("scale", ("scale", 1)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 3)),
            ("reweighting-iteration", ("iteration", 1)),
            ("dag01", ("limit", 2)),
            ("final-dijkstra",),
        ],
        counters={
            "reach.rounds": 132,
            "dag01-peeling.label_changes": 25,
            "dag01-peeling.propagate_calls": 15,
            "dag01-peeling.propagate_nodes": 109,
            "dag01-peeling.reach_calls": 7,
            "dag01-peeling.reach_nodes": 115,
            "peel-round.finalized": 84,
            "peel-round.invalidated": 25,
            "limited-sssp.refine_calls": 3,
            "limited-sssp.refine_nodes": 46,
            "refine.nodes": 46,
            "refine.finalized": 16,
            "refine.reassigned": 30,
            "final-dijkstra.settled": 16,
        },
        names={
            "solve": 1, "scaling": 1, "scale": 5, "reweighting": 5,
            "reweighting-iteration": 5, "scc": 5, "reach": 82, "dag01": 5,
            "dag01-peeling": 5, "peel-round": 11, "chain-elimination": 1,
            "limited-sssp": 1, "refine": 3, "final-dijkstra": 1,
        },
    ),
    # hidden_potential_graph(24, 70, seed=2): feasible, multi-iteration
    "hp24": dict(
        make=lambda: hidden_potential_graph(24, 70, seed=2),
        negative_cycle=False,
        skeleton=[
            ("scale", ("scale", 16)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 1)),
            ("chain-elimination", ("limit", 1)),
            ("limited-sssp", ("limit", 1)),
            ("scale", ("scale", 8)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 2)),
            ("scale", ("scale", 4)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 3)),
            ("reweighting-iteration", ("iteration", 1)),
            ("dag01", ("limit", 1)),
            ("chain-elimination", ("limit", 1)),
            ("limited-sssp", ("limit", 1)),
            ("scale", ("scale", 2)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 3)),
            ("chain-elimination", ("limit", 3)),
            ("limited-sssp", ("limit", 3)),
            ("reweighting-iteration", ("iteration", 1)),
            ("dag01", ("limit", 2)),
            ("scale", ("scale", 1)),
            ("reweighting-iteration", ("iteration", 0)),
            ("dag01", ("limit", 4)),
            ("reweighting-iteration", ("iteration", 1)),
            ("dag01", ("limit", 3)),
            ("reweighting-iteration", ("iteration", 2)),
            ("dag01", ("limit", 1)),
            ("chain-elimination", ("limit", 1)),
            ("limited-sssp", ("limit", 1)),
            ("final-dijkstra",),
        ],
        counters={
            "reach.rounds": 451,
            "dag01-peeling.label_changes": 53,
            "dag01-peeling.propagate_calls": 29,
            "dag01-peeling.propagate_nodes": 278,
            "dag01-peeling.reach_calls": 20,
            "dag01-peeling.reach_nodes": 433,
            "peel-round.finalized": 225,
            "peel-round.invalidated": 53,
            "limited-sssp.refine_calls": 16,
            "limited-sssp.refine_nodes": 338,
            "refine.nodes": 338,
            "refine.finalized": 96,
            "refine.reassigned": 207,
            "final-dijkstra.settled": 24,
        },
        names={
            "solve": 1, "scaling": 1, "scale": 5, "reweighting": 5,
            "reweighting-iteration": 9, "scc": 9, "reach": 227, "dag01": 9,
            "dag01-peeling": 9, "peel-round": 24, "chain-elimination": 4,
            "limited-sssp": 4, "refine": 16, "final-dijkstra": 1,
        },
    ),
    # random_digraph(20, 50, min_w=-3, max_w=9, seed=5): negative cycle —
    # the solve stops mid-reweighting, so the trace ends without a
    # final-dijkstra span
    "rd20neg": dict(
        make=lambda: random_digraph(20, 50, min_w=-3, max_w=9, seed=5),
        negative_cycle=True,
        skeleton=[
            ("scale", ("scale", 4)),
            ("scale", ("scale", 2)),
            ("reweighting-iteration", ("iteration", 0)),
        ],
        counters={"reach.rounds": 18},
        names={
            "solve": 1, "scaling": 1, "scale": 2, "reweighting": 2,
            "reweighting-iteration": 1, "scc": 1, "reach": 10,
        },
    ),
}


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_skeleton(case):
    spec = GOLDEN[case]
    trace, res = _solve_traced(spec["make"]())
    assert (res.dist is None) == spec["negative_cycle"]
    assert phase_sequence(trace, names=SKELETON_NAMES) == spec["skeleton"]


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_counters(case):
    spec = GOLDEN[case]
    trace, _ = _solve_traced(spec["make"]())
    assert _counter_totals(trace) == spec["counters"]


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_span_name_histogram(case):
    spec = GOLDEN[case]
    trace, _ = _solve_traced(spec["make"]())
    hist = _name_histogram(trace)
    # parallel-for spans come from the runtime layer and scale with the
    # worker pool, not the algorithm; everything else must match exactly
    hist = {k: v for k, v in hist.items()
            if not k.startswith("parallel-for")}
    assert hist == spec["names"]


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_traces_are_deterministic(case):
    """Same graph + seed twice -> identical phase sequence with attrs."""
    spec = GOLDEN[case]
    t1, _ = _solve_traced(spec["make"]())
    t2, _ = _solve_traced(spec["make"]())
    assert phase_sequence(t1) == phase_sequence(t2)


# ---------------------------------------------------------------------------
# process backend: shipped worker spans ride along, skeleton unchanged
# ---------------------------------------------------------------------------

@pytest.mark.telemetry
def test_golden_skeleton_survives_process_backend_with_shipped_spans():
    """Solving over the process pool splices in-worker spans into the
    trace but must not perturb the golden structural skeleton — shipped
    spans are runtime-layer additions, like parallel-for spans."""
    from repro.runtime.backends import ProcessForkJoinPool

    spec = GOLDEN["hp16"]
    base_trace, base = _solve_traced(spec["make"]())
    with ProcessForkJoinPool(2, grain=8) as pool:
        tr = Tracer()
        with tracing(tr):
            res = solve_sssp(spec["make"](), 0, seed=SEED, backend=pool)
    np.testing.assert_array_equal(res.dist, base.dist)
    trace = Trace.from_tracer(tr)
    assert phase_sequence(trace, names=SKELETON_NAMES) == spec["skeleton"]
    blocks = [s for s in trace.spans
              if s.name == "map-blocks-block"
              and s.attrs.get("backend") == "process"]
    assert blocks, "process solve must record shipped block spans"
    for s in blocks:
        assert "worker" in s.attrs
    shipped = [s for s in trace.spans if s.name == "block-reduce"]
    assert shipped and all("worker" in s.attrs for s in shipped)
    # splicing renumbers sids but must never orphan a parent
    sids = {s.sid for s in trace.spans}
    assert all(s.parent is None or s.parent in sids for s in trace.spans)
