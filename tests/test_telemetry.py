"""Worker telemetry pipeline suite: cross-process span/metric shipping,
live HTTP exposition, and the per-phase profiler.

The load-bearing invariant throughout is *exactly-once accounting*:
in-worker telemetry rides only accepted ``ok`` results, and the pool's
epoch/duplicate filter discards stale straggler telemetry together with
the stale result — so per-element counters folded into the parent
registry equal the element count bit-exactly, independent of pool size,
re-dispatches, dropped results, or killed workers.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.analysis.tracetables import trace_worker_table
from repro.observability import Trace, Tracer, tracing, write_trace
from repro.observability.http import (
    HEALTH_SCHEMA,
    PROGRESS_SCHEMA,
    TelemetryServer,
    progress_snapshot,
)
from repro.observability.metrics import (
    MetricsRegistry,
    current_metrics,
    metering,
    metric_inc,
    parse_prometheus_text,
)
from repro.observability.profiler import (
    PROFILE_SCHEMA,
    PhaseProfiler,
    current_profiler,
    load_profile_json,
    profile_scope,
    profiling,
)
from repro.observability.tracer import NOOP_SPAN, current_tracer
from repro.observability.worker import (
    WorkerSession,
    in_worker_session,
    record_shipped_block,
    ship_flags,
    worker_event,
    worker_span,
)
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.runtime.backends import ProcessForkJoinPool

pytestmark = [pytest.mark.telemetry, pytest.mark.observability]

ARR = np.arange(100)


def fast_pool(n_workers=2, **kw):
    kw.setdefault("grain", 8)
    kw.setdefault("heartbeat_interval", 0.02)
    kw.setdefault("liveness_timeout", 0.5)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("straggler_factor", 100.0)
    return ProcessForkJoinPool(n_workers, **kw)


# ---------------------------------------------------------------------------
# module-level block functions (picklable by reference)
# ---------------------------------------------------------------------------

def _instrumented_square(lo, hi, arr):
    with worker_span("blk-square", lo=lo, hi=hi) as sp:
        sp.count("elems", hi - lo)
        with worker_span("blk-inner"):
            out = arr[lo:hi] ** 2
    worker_event("blk-done", lo=lo)
    metric_inc("repro_test_elems_total", hi - lo)
    return out


def _assert_no_orphans(trace: Trace) -> None:
    sids = {s.sid for s in trace.spans}
    for s in trace.spans:
        assert s.parent is None or s.parent in sids, \
            f"span {s.sid} ({s.name}) has orphan parent {s.parent}"


def _elems_total(reg: MetricsRegistry) -> float:
    fam = reg.state().get("repro_test_elems_total")
    return sum(fam["samples"].values()) if fam else 0.0


# ---------------------------------------------------------------------------
# worker-side session semantics (in-process unit tests)
# ---------------------------------------------------------------------------

class TestWorkerSession:
    def test_worker_span_is_noop_outside_session(self):
        assert not in_worker_session()
        assert worker_span("anything") is NOOP_SPAN
        worker_event("ignored")  # must not raise

    def test_session_records_spans_and_metrics(self):
        with WorkerSession((True, True)) as sess:
            assert in_worker_session()
            with worker_span("w1", lo=0, hi=10) as sp:
                sp.count("elems", 10)
            worker_event("ev", k=1)
            metric_inc("repro_test_elems_total", 10)
        assert not in_worker_session()
        t = sess.collect()
        assert [s.name for s in t.spans] == ["w1"]
        assert t.spans[0].counters["elems"] == 10
        assert [e.name for e in t.events] == ["ev"]
        assert t.wall >= 0.0 and t.cpu >= 0.0
        folded = MetricsRegistry.from_json(t.metrics)
        assert _elems_total(folded) == 10

    def test_session_with_telemetry_off_masks_parent_ambient(self):
        # the fork snapshot scenario: an (inherited) ambient tracer must
        # be invisible inside the session, and restored after
        tr = Tracer()
        reg = MetricsRegistry()
        with tracing(tr), metering(reg):
            with WorkerSession(None) as sess:
                assert current_tracer() is None
                assert current_metrics() is None
                assert not in_worker_session()
                assert worker_span("x") is NOOP_SPAN
            assert current_tracer() is tr
            assert current_metrics() is reg
        assert sess.collect() is None
        assert sess.progress() is None
        assert not tr.spans

    def test_span_cap_keeps_ancestors_and_counts_drops(self):
        with WorkerSession((True, False), max_spans=2) as sess:
            with worker_span("outer"):
                for _ in range(4):
                    with worker_span("leaf"):
                        pass
        t = sess.collect()
        assert len(t.spans) == 2
        assert t.dropped_spans == 3
        # sid-order prefix: a shipped child's parent is always shipped
        sids = {s.sid for s in t.spans}
        for s in t.spans:
            assert s.parent is None or s.parent in sids

    def test_progress_snapshot_from_heartbeat_thread(self):
        with WorkerSession((True, True)) as sess:
            with worker_span("w"):
                pass
            metric_inc("repro_test_elems_total", 1)
            spans, fams = sess.progress()
            # closing "w" also folded repro_spans_total/_wall_seconds
            assert spans == 1 and fams >= 1

    def test_ship_flags_mirror_ambient_planes(self):
        assert ship_flags() is None
        with tracing(Tracer()):
            assert ship_flags() == (True, False)
            with metering(MetricsRegistry()):
                assert ship_flags() == (True, True)
        with metering(MetricsRegistry()):
            assert ship_flags() == (False, True)


class TestRecordShippedBlock:
    def test_splice_nests_under_block_span_with_worker_attr(self):
        with WorkerSession((True, True)) as sess:
            with worker_span("w1"):
                with worker_span("w2"):
                    pass
            metric_inc("repro_test_elems_total", 7)
        telem = sess.collect()

        tr = Tracer()
        reg = MetricsRegistry()
        with tracing(tr), metering(reg):
            with tr.span("map-blocks") as dispatch:
                blk = record_shipped_block(telem, parent=dispatch.span.sid,
                                           wid=3, attempt=1, lo=0, hi=7)
        trace = Trace.from_tracer(tr)
        _assert_no_orphans(trace)
        assert blk.attrs["worker"] == 3
        assert blk.attrs["spans_shipped"] == 2
        by_name = {s.name: s for s in trace.spans}
        assert by_name["w1"].parent == blk.sid
        assert by_name["w2"].parent == by_name["w1"].sid
        assert by_name["w1"].attrs["worker"] == 3
        # metric deltas folded once; spliced spans NOT double-folded
        assert _elems_total(reg) == 7
        shipped = reg.state()["repro_worker_spans_shipped_total"]
        assert sum(shipped["samples"].values()) == 2

    def test_none_telemetry_still_records_block_marker(self):
        tr = Tracer()
        with tracing(tr):
            with tr.span("map-blocks") as dispatch:
                blk = record_shipped_block(None, parent=dispatch.span.sid,
                                           wid=0, attempt=2, lo=0, hi=5)
        assert blk.attrs["attempt"] == 2
        assert "spans_shipped" not in blk.attrs

    def test_noop_when_tracing_off(self):
        assert record_shipped_block(None, parent=None, wid=0, attempt=1,
                                    lo=0, hi=1) is None


# ---------------------------------------------------------------------------
# cross-process shipping through the real pool
# ---------------------------------------------------------------------------

class TestProcessShipping:
    def test_worker_spans_arrive_nested_with_worker_ids(self):
        tr = Tracer()
        reg = MetricsRegistry()
        with tracing(tr), metering(reg), fast_pool() as p:
            out = p.map_blocks(100, _instrumented_square, (ARR,))
        assert np.array_equal(np.concatenate(out), ARR ** 2)
        trace = Trace.from_tracer(tr)
        _assert_no_orphans(trace)
        blocks = [s for s in trace.spans if s.name == "map-blocks-block"]
        squares = [s for s in trace.spans if s.name == "blk-square"]
        inners = [s for s in trace.spans if s.name == "blk-inner"]
        assert blocks and len(squares) == len(blocks) == len(inners)
        block_sids = {s.sid for s in blocks}
        for s in squares:
            assert s.parent in block_sids
            assert "worker" in s.attrs
        for s in blocks:
            assert "worker" in s.attrs and s.attrs["backend"] == "process"
            assert s.attrs["spans_shipped"] == 2
        done = [e for e in trace.events if e.name == "blk-done"]
        assert len(done) == len(blocks)
        # per-element accounting: counters fold to exactly n
        assert _elems_total(reg) == 100
        assert sum(s.counters.get("elems", 0) for s in squares) == 100

    @pytest.mark.parametrize("workers", [1, 4])
    def test_metric_totals_are_pool_size_independent(self, workers):
        reg = MetricsRegistry()
        with metering(reg), fast_pool(workers) as p:
            p.map_blocks(100, _instrumented_square, (ARR,))
        assert _elems_total(reg) == 100

    @pytest.mark.parametrize("site", ["result_drop", "worker_kill"])
    def test_exactly_once_despite_faults(self, site):
        plan = FaultPlan([FaultSpec(site, calls=(1,))], seed=5)
        tr = Tracer()
        reg = MetricsRegistry()
        with tracing(tr), metering(reg), \
                fast_pool(liveness_timeout=0.2) as p:
            p.install_fault_plan(plan)
            out = p.map_blocks(100, _instrumented_square, (ARR,))
        assert np.array_equal(np.concatenate(out), ARR ** 2)
        assert plan.fired(site) >= 1
        # the faulted block's first telemetry died with its message;
        # the re-dispatched execution is folded exactly once
        assert _elems_total(reg) == 100
        trace = Trace.from_tracer(tr)
        _assert_no_orphans(trace)
        squares = [s for s in trace.spans if s.name == "blk-square"]
        assert sum(s.counters.get("elems", 0) for s in squares) == 100
        if site == "worker_kill":
            assert any(e.name == "worker-lost" for e in trace.events)

    def test_worker_table_rows_from_shipped_trace(self):
        tr = Tracer()
        with tracing(tr), fast_pool() as p:
            p.map_blocks(100, _instrumented_square, (ARR,))
        rows = trace_worker_table(Trace.from_tracer(tr))
        assert rows
        assert sum(r.values["blocks"] for r in rows) == 8
        for r in rows:
            assert r.params["backend"] == "process"
            assert r.values["spans_shipped"] == 2 * r.values["blocks"]
            assert r.values["losses"] == 0

    def test_telemetry_off_ships_nothing(self):
        with fast_pool() as p:
            out = p.map_blocks(100, _instrumented_square, (ARR,))
        assert np.array_equal(np.concatenate(out), ARR ** 2)


# ---------------------------------------------------------------------------
# live HTTP exposition
# ---------------------------------------------------------------------------

def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestTelemetryHttp:
    def test_metrics_endpoint_roundtrips(self):
        reg = MetricsRegistry()
        reg.inc("repro_test_elems_total", 3.0, backend="serial")
        with TelemetryServer(registry=reg) as srv:
            status, text = _get(srv.url("/metrics"))
        assert status == 200
        parsed = parse_prometheus_text(text)
        assert _elems_total(parsed) == 3.0
        # the scrape itself is metered
        assert "repro_scrapes_total" in reg.state()

    def test_healthz_and_progress_schemas(self):
        reg = MetricsRegistry()
        tr = Tracer()
        with TelemetryServer(registry=reg, tracer=tr) as srv:
            with tr.span("solve", phase="solve"):
                with tr.span("scale", phase="scaling"):
                    _, health = _get(srv.url("/healthz"))
                    _, progress = _get(srv.url("/progress"))
        h = json.loads(health)
        assert h["schema"] == HEALTH_SCHEMA and h["ok"] is True
        pr = json.loads(progress)
        assert pr["schema"] == PROGRESS_SCHEMA
        assert pr["phase"] == "scale"
        assert pr["open_spans"] == ["solve", "scale"]

    def test_unknown_path_is_json_404(self):
        with TelemetryServer(registry=MetricsRegistry()) as srv:
            with pytest.raises(urllib.error.HTTPError) as ei:
                _get(srv.url("/nope"))
        assert ei.value.code == 404
        assert "/metrics" in ei.value.read().decode("utf-8")

    def test_concurrent_scrapes_never_tear_mid_solve(self):
        """Scrape /metrics continuously while the pool folds worker
        telemetry; every response must parse (no torn histograms)."""
        reg = MetricsRegistry()
        stop = threading.Event()
        errors: list[Exception] = []

        def hammer(url):
            while not stop.is_set():
                try:
                    _, text = _get(url)
                    parse_prometheus_text(text)
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)
                    return

        with TelemetryServer(registry=reg) as srv:
            t = threading.Thread(target=hammer,
                                 args=(srv.url("/metrics"),), daemon=True)
            t.start()
            try:
                with metering(reg), fast_pool() as p:
                    for _ in range(5):
                        p.map_blocks(100, _instrumented_square, (ARR,))
            finally:
                stop.set()
                t.join(5.0)
        assert not errors
        assert _elems_total(reg) == 500

    def test_progress_snapshot_defaults_to_ambient_and_tolerates_none(self):
        doc = progress_snapshot()
        assert doc["phase"] is None and doc["workers"] is None
        with fast_pool() as p:
            doc = progress_snapshot(backend=p)
            assert doc["workers"]["backend"] == "process"
            assert doc["workers"]["n_workers"] == 2

    def test_port_zero_resolves_and_stop_is_idempotent(self):
        srv = TelemetryServer(registry=MetricsRegistry(), port=0)
        srv.start()
        port = srv.port
        assert 0 < port <= 65535
        srv.stop()
        srv.stop()


# ---------------------------------------------------------------------------
# per-phase profiler
# ---------------------------------------------------------------------------

def _burn(k: int) -> int:
    return sum(i * i for i in range(k))


class TestPhaseProfiler:
    def test_profile_scope_is_noop_when_off(self):
        assert current_profiler() is None
        with profile_scope("anything"):
            pass  # shared no-op handle; nothing recorded anywhere

    def test_phases_accumulate_and_nested_scopes_fold_in(self):
        prof = PhaseProfiler()
        with profiling(prof):
            assert current_profiler() is prof
            for _ in range(3):
                with profile_scope("alpha"):
                    _burn(500)
                    with profile_scope("beta"):  # nested: absorbed
                        _burn(500)
            with profile_scope("beta"):
                _burn(100)
        assert prof.phases() == ["alpha", "beta"]
        assert prof.calls == {"alpha": 3, "beta": 1}
        assert prof.nested == {"beta": 3}
        summary = prof.summary()
        assert summary["alpha"]["calls"] == 3
        assert any("_burn" in r["func"]
                   for r in summary["alpha"]["functions"])
        assert summary["alpha"]["wall_s"] > 0

    def test_exports_roundtrip(self, tmp_path):
        prof = PhaseProfiler(top=5)
        with profiling(prof):
            with profile_scope("phase-x"):
                _burn(2000)
        paths = prof.write(tmp_path)
        assert (tmp_path / "phase-x.prof").is_file()
        doc = load_profile_json(paths["json"])
        assert doc["schema"] == PROFILE_SCHEMA
        assert "phase-x" in doc["phases"]
        assert len(doc["phases"]["phase-x"]["functions"]) <= 5
        collapsed = (tmp_path / "profile.collapsed").read_text()
        for line in collapsed.strip().splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack.startswith("phase-x;")
            assert int(weight) >= 0

    def test_profiled_solve_captures_algorithm_phases(self):
        from repro.core.sssp import solve_sssp
        from repro.graph.generators import hidden_potential_graph

        g = hidden_potential_graph(24, 70, seed=2)
        prof = PhaseProfiler()
        with profiling(prof):
            res = solve_sssp(g, 0, seed=0)
        assert not res.has_negative_cycle
        assert "scale" in prof.phases()
        assert "final-dijkstra" in prof.phases()

    def test_profiler_overhead_is_zero_by_construction_when_off(self):
        # the off-path guard is one global load + None test: assert the
        # fast path returns the shared singleton, not a new object
        a = profile_scope("x")
        b = profile_scope("y")
        assert a is b


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestTelemetryCli:
    @pytest.fixture()
    def graph_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["generate", "hidden-potential", "--n", "20",
                   "--m", "60"])
        assert rc == 0
        p = tmp_path / "g.gr"
        p.write_text(capsys.readouterr().out)
        return p

    def test_profile_command_prints_tables_and_exports(self, capsys,
                                                       tmp_path,
                                                       graph_file):
        from repro.cli import main

        outdir = tmp_path / "prof"
        rc = main(["profile", str(graph_file), "--output", str(outdir),
                   "--top", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profiled phases" in out and "hot paths" in out
        assert (outdir / "profile.json").is_file()

    def test_solve_metrics_port_serves_and_is_validated(self, capsys,
                                                        graph_file):
        from repro.cli import main

        rc = main(["solve", str(graph_file), "--metrics-port", "70000"])
        assert rc == 2
        rc = main(["solve", str(graph_file), "--metrics-port", "0"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "c metrics: http://127.0.0.1:" in err

    def test_trace_profile_flag(self, capsys, tmp_path, graph_file):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        prof = tmp_path / "prof"
        assert main(["profile", str(graph_file), "--output",
                     str(prof)]) == 0
        assert main(["solve", str(graph_file), "--trace",
                     str(trace)]) == 0
        capsys.readouterr()
        rc = main(["trace", str(trace), "--profile", str(prof)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profiled phases" in out and "hot paths" in out
