"""Tests for √k-improvement (§5/§6.1, Theorem 16)."""

import math

import numpy as np
import pytest

from repro.core import (
    count_negative_vertices,
    is_valid_improvement,
    negative_vertices,
    sqrt_k_improvement,
)
from repro.graph import (
    DiGraph,
    independent_negatives_gadget,
    negative_chain_gadget,
    random_digraph,
    validate_negative_cycle,
)
from repro.runtime import CostAccumulator


def clip_to_reweighting(g):
    """Clamp weights to >= -1 (valid 1-reweighting instance)."""
    return g.with_weights(np.maximum(g.w, -1))


class TestNegativeVertices:
    def test_counts_targets_of_negative_edges(self):
        g = DiGraph.from_edges(4, [(0, 1, -1), (2, 1, -1), (2, 3, 0)])
        assert negative_vertices(g).tolist() == [1]
        assert count_negative_vertices(g) == 1

    def test_empty(self):
        assert count_negative_vertices(DiGraph.from_edges(3, [])) == 0


class TestIsValidImprovement:
    def test_accepts_identity_when_feasible(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        assert is_valid_improvement(g, g.w, np.zeros(2, dtype=np.int64))

    def test_rejects_below_minus_one(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        assert not is_valid_improvement(g, g.w, np.array([-1, 0]))

    def test_rejects_new_negative_edge(self):
        g = DiGraph.from_edges(2, [(0, 1, 0)])
        assert not is_valid_improvement(g, g.w, np.array([-1, 0]))

    def test_rejects_insufficient_progress(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        assert not is_valid_improvement(g, g.w, np.zeros(2, dtype=np.int64),
                                        tau=1)

    def test_accepts_progress(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        assert is_valid_improvement(g, g.w, np.array([0, -1]), tau=1)


@pytest.mark.parametrize("mode", ["parallel", "sequential"])
class TestSqrtKImprovement:
    def test_feasible_graph_no_op(self, mode):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 0)])
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.k == 0
        assert out.negative_cycle is None

    def test_independent_set_case(self, mode):
        g = independent_negatives_gadget(9)
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.method == "independent-set"
        assert out.k == 9
        assert out.improved >= 3  # ceil(sqrt(9))
        assert is_valid_improvement(g, g.w, out.price_delta,
                                    tau=out.improved)

    def test_chain_case(self, mode):
        g = negative_chain_gadget(16)
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.method == "chain"
        assert out.chain_length == 4  # ceil(sqrt(16))
        assert is_valid_improvement(g, g.w, out.price_delta, tau=4)

    def test_detects_pure_negative_cycle(self, mode):
        g = DiGraph.from_edges(3, [(0, 1, -1), (1, 2, 0), (2, 0, 0)])
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.method == "cycle"
        assert validate_negative_cycle(g, out.negative_cycle)

    def test_detects_mixed_sign_cycle(self, mode):
        # the +1 edge hides the cycle from Step 1; Step 3 must catch it
        g = DiGraph.from_edges(5, [(0, 1, -1), (1, 2, -1), (2, 3, -1),
                                   (3, 4, -1), (4, 0, 1)])
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.method == "cycle"
        assert validate_negative_cycle(g, out.negative_cycle)

    def test_improvement_eliminates_sqrt_k(self, mode):
        """Theorem 16 progress: >= ceil(sqrt(k)) negative vertices gone."""
        for seed in range(4):
            g = clip_to_reweighting(
                random_digraph(40, 200, min_w=-1, max_w=5, seed=seed))
            k = count_negative_vertices(g)
            if k == 0:
                continue
            out = sqrt_k_improvement(g, g.w, mode=mode, seed=seed)
            if out.method == "cycle":
                assert validate_negative_cycle(g, out.negative_cycle)
                continue
            w_after = g.w + out.price_delta[g.src] - out.price_delta[g.dst]
            k_after = count_negative_vertices(g, w_after)
            # k counts condensation negatives which can be below the raw
            # count; require ceil(sqrt(out.k)) raw progress
            need = math.isqrt(out.k)
            if need * need < out.k:
                need += 1
            assert k - k_after >= min(need, k)

    def test_rejects_weights_below_minus_one(self, mode):
        g = DiGraph.from_edges(2, [(0, 1, -5)])
        with pytest.raises(ValueError, match=">= -1"):
            sqrt_k_improvement(g, g.w, mode=mode)

    def test_zero_weight_cycle_contracted(self, mode):
        # 0-cycle {1,2} with a negative edge into it: contraction, then
        # the single negative vertex improves
        g = DiGraph.from_edges(4, [(0, 1, -1), (1, 2, 0), (2, 1, 0),
                                   (2, 3, 1)])
        out = sqrt_k_improvement(g, g.w, mode=mode)
        assert out.method in ("chain", "independent-set")
        assert is_valid_improvement(g, g.w, out.price_delta, tau=1)

    def test_cost_charged(self, mode):
        g = negative_chain_gadget(9)
        acc = CostAccumulator()
        sqrt_k_improvement(g, g.w, mode=mode, acc=acc)
        assert acc.work > 0

    def test_bad_mode_rejected(self, mode):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(ValueError, match="mode"):
            sqrt_k_improvement(g, g.w, mode="bogus")
