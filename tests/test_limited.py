"""Tests for §4 LimitedSP (Algorithm 3, Theorem 15) and its machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assp import DeltaSteppingAssp, ExactAssp, FlakyAssp, PerturbedAssp
from repro.baselines import dijkstra
from repro.graph import DiGraph, grid_graph, random_digraph, zero_heavy_digraph
from repro.limited import (
    IntervalTable,
    LimitedSpResult,
    VerificationError,
    limited_sssp,
    smallest_power_of_two_above,
    verify_limited_distances,
    shortest_path_tree,
)
from repro.runtime import CostAccumulator


def reference(g, source, limit):
    d = dijkstra(g, source).dist
    d[d > limit] = np.inf
    return d


def assert_limited_correct(g, source, limit, **kw):
    res = limited_sssp(g, source, limit, **kw)
    np.testing.assert_array_equal(res.dist, reference(g, source, limit))
    return res


class TestSmallestPowerOfTwoAbove:
    @pytest.mark.parametrize("x,expect", [(0, 1), (1, 2), (2, 4), (3, 4),
                                          (4, 8), (7, 8), (8, 16)])
    def test_values(self, x, expect):
        assert smallest_power_of_two_above(x) == expect

    def test_negative(self):
        with pytest.raises(ValueError):
            smallest_power_of_two_above(-1)


class TestIntervalTable:
    def test_assign_and_members(self):
        t = IntervalTable(5)
        t.assign(np.array([1, 3]), 0, 4)
        assert t.members(0, 4).tolist() == [1, 3]
        assert t.start[1] == 0 and t.size[3] == 4

    def test_reassign_moves(self):
        t = IntervalTable(5)
        t.assign(np.array([1]), 0, 4)
        t.assign(np.array([1]), 2, 2)
        assert t.members(0, 4).tolist() == []
        assert t.members(2, 2).tolist() == [1]

    def test_remove(self):
        t = IntervalTable(3)
        t.assign(np.array([0, 1]), 0, 2)
        t.remove(np.array([0]))
        assert t.members(0, 2).tolist() == [1]

    def test_additions_counted(self):
        t = IntervalTable(3)
        t.assign(np.array([0]), 0, 8)
        t.assign(np.array([0]), 0, 4)
        assert t.additions[0] == 2

    def test_invalid_interval(self):
        t = IntervalTable(2)
        with pytest.raises(ValueError):
            t.assign(np.array([0]), -1, 2)
        with pytest.raises(ValueError):
            t.assign(np.array([0]), 0, 0)

    def test_overlap_keys(self):
        t = IntervalTable(10)
        t.assign(np.array([0]), 0, 8)    # [0, 8)
        t.assign(np.array([1]), 4, 4)    # [4, 8)
        t.assign(np.array([2]), 6, 1)    # [6, 7)
        t.assign(np.array([3]), 8, 2)    # [8, 10)
        keys = set(t.overlap_keys(4, 4, max_size=16))
        assert (0, 8) in keys and (4, 4) in keys and (6, 1) in keys
        assert (8, 2) not in keys

    def test_overlap_keys_left_neighbour(self):
        t = IntervalTable(4)
        t.assign(np.array([0]), 2, 4)    # [2, 6)
        keys = t.overlap_keys(4, 2, max_size=8)
        assert (2, 4) in keys

    def test_gather_filters_stale(self):
        t = IntervalTable(4)
        t.assign(np.array([0, 1]), 0, 4)
        t.assign(np.array([1]), 2, 2)   # 1's old entry in (0,4) is stale
        got = t.gather([(0, 4)])
        assert got.tolist() == [0]

    def test_unassigned(self):
        t = IntervalTable(3)
        t.assign(np.array([1]), 0, 2)
        assert t.unassigned().tolist() == [0, 2]


class TestLimitedExactEngine:
    def test_line_graph(self):
        g = DiGraph.from_edges(5, [(i, i + 1, 1) for i in range(4)])
        assert_limited_correct(g, 0, 2)

    def test_zero_weight_chain(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 3, 5)])
        assert_limited_correct(g, 0, 3)

    def test_zero_weight_cycle(self):
        g = DiGraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 0, 0),
                                   (2, 3, 2)])
        assert_limited_correct(g, 0, 4)

    def test_limit_zero(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 2, 1)])
        res = assert_limited_correct(g, 0, 0)
        assert res.dist.tolist() == [0, 0, np.inf]

    def test_unreachable(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        res = assert_limited_correct(g, 0, 5)
        assert res.dist[2] == np.inf

    def test_single_vertex(self):
        g = DiGraph.from_edges(1, [])
        res = limited_sssp(g, 0, 4)
        assert res.dist.tolist() == [0]

    @pytest.mark.parametrize("seed", range(6))
    def test_random(self, seed):
        g = random_digraph(35, 180, min_w=0, max_w=6, seed=seed)
        assert_limited_correct(g, 0, 12)

    @pytest.mark.parametrize("limit", [0, 1, 2, 3, 5, 9, 17, 64])
    def test_limit_sweep(self, limit):
        g = zero_heavy_digraph(30, 160, p_zero=0.5, seed=2)
        assert_limited_correct(g, 0, limit)

    def test_grid_high_diameter(self):
        g = grid_graph(6, 6, min_w=0, max_w=2, seed=1)
        assert_limited_correct(g, 0, 9)

    @given(st.integers(0, 50_000), st.integers(0, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_random(self, seed, limit):
        g = zero_heavy_digraph(16, 60, p_zero=0.4, max_w=4, seed=seed)
        assert_limited_correct(g, 0, limit)


class TestLimitedOtherEngines:
    @pytest.mark.parametrize("seed", range(3))
    def test_perturbed(self, seed):
        g = zero_heavy_digraph(30, 150, p_zero=0.4, seed=seed)
        assert_limited_correct(g, 0, 10,
                               engine=PerturbedAssp(seed=seed), eps=0.2)

    @pytest.mark.parametrize("seed", range(3))
    def test_delta_stepping(self, seed):
        g = random_digraph(30, 140, min_w=0, max_w=5, seed=seed)
        assert_limited_correct(g, 0, 8, engine=DeltaSteppingAssp())

    def test_flaky_retries_until_verified(self):
        g = zero_heavy_digraph(25, 120, p_zero=0.4, seed=4)
        engine = FlakyAssp(p_fail=0.4, seed=11)
        res = assert_limited_correct(g, 0, 8, engine=engine,
                                     max_retries=50)
        assert res.verified

    def test_flaky_always_fails_raises(self):
        g = DiGraph.from_edges(4, [(0, 1, 2), (1, 2, 2), (2, 3, 2)])

        class AlwaysWrong:
            name = "always-wrong"

            def __call__(self, g2, s, eps, acc=None, model=None,
                         weights=None):
                d = ExactAssp()(g2, s, eps, acc, model, weights)
                out = d.copy()
                out[np.isfinite(out) & (out > 0)] += 100  # gross inflation
                return out

        with pytest.raises(VerificationError):
            limited_sssp(g, 0, 6, engine=AlwaysWrong(), max_retries=2)


class TestLimitedValidation:
    def test_rejects_negative_weights(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(ValueError, match="nonnegative"):
            limited_sssp(g, 0, 3)

    def test_rejects_bad_eps(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError, match="eps"):
            limited_sssp(g, 0, 3, eps=0.5)
        with pytest.raises(ValueError, match="eps"):
            limited_sssp(g, 0, 3, eps=0.0)

    def test_rejects_bad_source(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError, match="source"):
            limited_sssp(g, 7, 3)

    def test_rejects_negative_limit(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError, match="limit"):
            limited_sssp(g, 0, -2)


class TestShortestPathTree:
    def walk_weight(self, g, parent, v):
        total = 0
        seen = set()
        while parent[v] >= 0:
            assert v not in seen, "parent cycle"
            seen.add(v)
            p = int(parent[v])
            total += g.min_weight_between(p, v)
            v = p
        return total, v

    @pytest.mark.parametrize("seed", range(4))
    def test_tree_realises_distances(self, seed):
        g = zero_heavy_digraph(30, 150, p_zero=0.5, seed=seed)
        res = limited_sssp(g, 0, 15)
        for v in range(g.n):
            if np.isfinite(res.dist[v]) and v != 0:
                total, root = self.walk_weight(g, res.parent, v)
                assert root == 0
                assert total == res.dist[v]

    def test_source_and_far_have_no_parent(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, 50)])
        res = limited_sssp(g, 0, 5)
        assert res.parent[0] == -1
        assert res.parent[2] == -1


class TestVerifier:
    def test_accepts_correct(self):
        g = zero_heavy_digraph(25, 120, p_zero=0.4, seed=0)
        d = reference(g, 0, 10)
        assert verify_limited_distances(g, 0, d, 10)

    def test_rejects_too_small(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 2)])
        assert not verify_limited_distances(
            g, 0, np.array([0.0, 1.0, 4.0]), 10)

    def test_rejects_too_large(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 2)])
        assert not verify_limited_distances(
            g, 0, np.array([0.0, 3.0, 5.0]), 10)

    def test_rejects_missed_vertex(self):
        # vertex within limit reported as inf
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 2)])
        assert not verify_limited_distances(
            g, 0, np.array([0.0, 2.0, np.inf]), 10)

    def test_rejects_finite_beyond_limit(self):
        g = DiGraph.from_edges(2, [(0, 1, 9)])
        assert not verify_limited_distances(
            g, 0, np.array([0.0, 9.0]), 5)

    def test_rejects_zero_cycle_disagreement(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, 0), (2, 1, 0)])
        assert not verify_limited_distances(
            g, 0, np.array([0.0, 1.0, 2.0]), 10)

    def test_accepts_beyond_limit_inf(self):
        g = DiGraph.from_edges(3, [(0, 1, 3), (1, 2, 3)])
        assert verify_limited_distances(
            g, 0, np.array([0.0, 3.0, np.inf]), 4)

    def test_rejects_wrong_source(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        assert not verify_limited_distances(g, 0, np.array([1.0, 2.0]), 5)


class TestInstrumentation:
    def test_interval_additions_bounded(self):
        """Lemma 13: O(lg^2 D) interval additions per vertex."""
        g = zero_heavy_digraph(50, 300, p_zero=0.3, max_w=4, seed=7)
        res = limited_sssp(g, 0, 32)
        bound = 6 * np.log2(64 + 2) ** 2
        assert res.interval_additions.max() <= bound

    def test_costs_accumulate(self):
        g = random_digraph(30, 120, min_w=0, max_w=4, seed=8)
        acc = CostAccumulator()
        res = limited_sssp(g, 0, 10, acc=acc)
        assert acc.work == res.cost.work > 0
        assert res.refine_calls > 0
        assert res.refine_node_total > 0

    def test_zero_retries_with_exact_engine(self):
        g = random_digraph(20, 80, min_w=0, max_w=4, seed=9)
        res = limited_sssp(g, 0, 6)
        assert res.retries == 0
