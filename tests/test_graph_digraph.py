"""Tests for the CSR DiGraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph


def small_graph():
    return DiGraph.from_edges(4, [(0, 1, 5), (0, 2, 3), (1, 3, 1),
                                  (2, 3, -2), (3, 0, 0)])


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.n == 4 and g.m == 5

    def test_empty_graph(self):
        g = DiGraph.from_edges(3, [])
        assert g.n == 3 and g.m == 0
        assert g.successors(0).tolist() == []

    def test_zero_vertices(self):
        g = DiGraph.from_edges(0, [])
        assert g.n == 0 and g.m == 0

    def test_edges_sorted_by_src_dst(self):
        g = DiGraph.from_edges(3, [(2, 0, 1), (0, 2, 2), (0, 1, 3)])
        assert g.src.tolist() == [0, 0, 2]
        assert g.dst.tolist() == [1, 2, 0]

    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            DiGraph.from_edges(2, [(0, 5, 1)])

    def test_negative_vertex_count(self):
        with pytest.raises(ValueError):
            DiGraph(-1, np.array([]), np.array([]), np.array([]))

    def test_bad_edge_shape(self):
        with pytest.raises(ValueError):
            DiGraph.from_edges(2, [(0, 1)])

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            DiGraph(2, np.array([0]), np.array([1, 0]), np.array([1]))

    def test_parallel_edges_allowed(self):
        g = DiGraph.from_edges(2, [(0, 1, 3), (0, 1, 7)])
        assert g.m == 2
        assert g.min_weight_between(0, 1) == 3

    def test_self_loop_allowed(self):
        g = DiGraph.from_edges(2, [(0, 0, 1)])
        assert g.has_edge(0, 0)


class TestAdjacency:
    def test_successors(self):
        g = small_graph()
        assert sorted(g.successors(0).tolist()) == [1, 2]

    def test_predecessors(self):
        g = small_graph()
        assert sorted(g.predecessors(3).tolist()) == [1, 2]

    def test_degrees(self):
        g = small_graph()
        assert g.out_degree(0) == 2
        assert g.in_degree(3) == 2
        assert g.out_degree().tolist() == [2, 1, 1, 1]
        assert g.in_degree().tolist() == [1, 1, 1, 2]

    def test_reverse_edge_ids_roundtrip(self):
        g = small_graph()
        # every reverse slot maps to a forward edge with matching endpoints
        for v in range(g.n):
            sl = g.in_slice(v)
            for pos in range(sl.start, sl.stop):
                eid = g.reids[pos]
                assert g.dst[eid] == v
                assert g.src[eid] == g.rindices[pos]

    def test_edge_lookup(self):
        g = small_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.min_weight_between(2, 3) == -2
        assert g.min_weight_between(1, 2) is None

    def test_edges_iterator(self):
        g = DiGraph.from_edges(2, [(0, 1, 9)])
        assert list(g.edges()) == [(0, 1, 9)]


class TestDerived:
    def test_with_weights(self):
        g = small_graph()
        h = g.with_weights(np.zeros(g.m, dtype=np.int64))
        assert h.w.tolist() == [0] * 5
        assert h.indptr is g.indptr  # topology shared

    def test_with_weights_length_check(self):
        with pytest.raises(ValueError):
            small_graph().with_weights(np.zeros(2))

    def test_reversed(self):
        g = small_graph()
        r = g.reversed()
        assert r.has_edge(1, 0) and not r.has_edge(0, 1)
        assert r.m == g.m

    def test_induced_subgraph(self):
        g = small_graph()
        h, nodes = g.induced_subgraph([0, 1, 3])
        assert nodes.tolist() == [0, 1, 3]
        assert h.n == 3
        # edges inside: (0,1,5), (1,3,1), (3,0,0) -> renumbered
        assert sorted((int(a), int(b), int(c)) for a, b, c in h.edges()) == \
            [(0, 1, 5), (1, 2, 1), (2, 0, 0)]

    def test_induced_subgraph_empty(self):
        g = small_graph()
        h, nodes = g.induced_subgraph([])
        assert h.n == 0 and h.m == 0

    def test_induced_subgraph_out_of_range(self):
        with pytest.raises(ValueError):
            small_graph().induced_subgraph([99])

    def test_induced_subgraph_dedupes_nodes(self):
        g = small_graph()
        h, nodes = g.induced_subgraph([1, 1, 0])
        assert h.n == 2 and nodes.tolist() == [0, 1]


@given(st.integers(2, 20), st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19), st.integers(-5, 5)),
    max_size=60))
@settings(max_examples=40, deadline=None)
def test_csr_consistency_property(n, raw_edges):
    """Forward and reverse CSR describe the same edge multiset."""
    edges = [(u % n, v % n, w) for u, v, w in raw_edges]
    g = DiGraph.from_edges(n, edges)
    fwd = sorted(zip(g.src.tolist(), g.dst.tolist(), g.w.tolist()))
    rev = sorted(zip(g.src[g.reids].tolist(), g.dst[g.reids].tolist(),
                     g.w[g.reids].tolist()))
    assert fwd == rev == sorted((u, v, w) for u, v, w in edges)
    assert g.indptr[-1] == g.m
    assert g.rindptr[-1] == g.m
