"""Tests for DIMACS I/O."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    DimacsError,
    dumps_dimacs,
    hidden_potential_graph,
    loads_dimacs,
    read_dimacs,
    write_dimacs,
    write_distances,
)


SAMPLE = """\
c a tiny instance
p sp 3 3
a 1 2 5
a 2 3 -2
a 1 3 9
"""


class TestRead:
    def test_sample(self):
        g = loads_dimacs(SAMPLE)
        assert g.n == 3 and g.m == 3
        assert sorted(g.edges()) == [(0, 1, 5), (0, 2, 9), (1, 2, -2)]

    def test_blank_lines_and_comments(self):
        g = loads_dimacs("c x\n\np sp 2 1\nc y\na 1 2 3\n")
        assert g.m == 1

    def test_missing_problem_line(self):
        with pytest.raises(DimacsError, match="problem line"):
            loads_dimacs("a 1 2 3\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(DimacsError, match="duplicate"):
            loads_dimacs("p sp 2 0\np sp 2 0\n")

    def test_wrong_arc_count(self):
        with pytest.raises(DimacsError, match="declares"):
            loads_dimacs("p sp 2 2\na 1 2 3\n")

    def test_vertex_out_of_range(self):
        with pytest.raises(DimacsError, match="out of range"):
            loads_dimacs("p sp 2 1\na 1 5 3\n")

    def test_unknown_record(self):
        with pytest.raises(DimacsError, match="unknown record"):
            loads_dimacs("p sp 2 1\nz 1 2\n")

    def test_malformed_arc(self):
        with pytest.raises(DimacsError):
            loads_dimacs("p sp 2 1\na 1 2\n")

    def test_not_sp_problem(self):
        with pytest.raises(DimacsError):
            loads_dimacs("p max 2 1\na 1 2 3\n")


class TestWrite:
    def test_roundtrip_text(self):
        g = DiGraph.from_edges(4, [(0, 1, -3), (2, 3, 7)])
        g2 = loads_dimacs(dumps_dimacs(g, comments=["hello"]))
        assert sorted(g.edges()) == sorted(g2.edges())
        assert g2.n == g.n

    def test_roundtrip_file(self, tmp_path):
        g = hidden_potential_graph(25, 100, seed=0)
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_empty_graph(self):
        g = DiGraph.from_edges(5, [])
        assert loads_dimacs(dumps_dimacs(g)).n == 5

    def test_write_distances(self):
        buf = io.StringIO()
        write_distances(np.array([0.0, 4.0, np.inf]), buf, source=0)
        lines = buf.getvalue().splitlines()
        assert lines[1:] == ["d 1 0", "d 2 4", "d 3 inf"]


class TestRoundTripProperty:
    @given(st.integers(1, 15), st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14),
                  st.integers(-1000, 1000)), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_dimacs_roundtrip_property(self, n, raw):
        edges = [(u % n, v % n, w) for u, v, w in raw]
        g = DiGraph.from_edges(n, edges)
        g2 = loads_dimacs(dumps_dimacs(g))
        assert g2.n == g.n
        assert sorted(g.edges()) == sorted(g2.edges())

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary text either parses or raises DimacsError/ValueError —
        never an unhandled exception type."""
        try:
            loads_dimacs(text)
        except (DimacsError, ValueError):
            pass
