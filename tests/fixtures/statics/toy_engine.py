"""Deliberately non-conformant toy engine — the RS011–RS015 self-test.

This file is never imported or executed: the statics self-test parses it
(``repro check --flow --paths tests/fixtures/statics``) and asserts that
every interprocedural rule fires at least once.  Each violation below is
labelled with the rule it exists to trigger.  Do not "fix" them.
"""

import threading


class Registry:
    """Stub mirroring repro.runtime.registry.Registry (never run)."""

    def __init__(self, kind):
        self.kind = kind

    def register(self, name):
        def deco(obj):
            return obj
        return deco


SSSP_ENGINES = Registry("SSSP engine")


@SSSP_ENGINES.register("toy")
class ToyEngine:
    """Breaks the whole contract: no charge, no span, no cancel check
    (three RS013 findings), an uncancellable engine loop (RS013), and a
    generic solver-path raise (RS014)."""

    name = "toy"

    def solve(self, g, source, backend=None):
        if g is None:
            raise ValueError("toy engine needs a graph")  # RS014
        return self._grind(g, source)

    def _grind(self, g, source):
        total = source
        while True:  # RS013: engine-path loop, no exit, no cancel check
            total += g
        return total


def _spin_task(lo, hi, data):
    acc = 0
    while True:  # RS015: worker-side loop, no exit, no cancel check
        acc += data[lo]
    return acc


def run(pool, data, hist):
    lock = threading.Lock()

    def body(lo, hi):
        hist[0] += 1  # RS012: shared write, no annotation, not disjoint

    pool.map_blocks(len(data), body)  # RS011: nested-function task
    pool.map_blocks(len(data), _spin_task, (lock,))  # RS011: lock in args
