"""Shared fixtures and helpers for the test suite.

networkx/scipy are used here (and only here) as independent oracles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DiGraph


def graph_from_triples(n, triples):
    return DiGraph.from_edges(n, triples)


from oracles import nx_sssp_oracle  # noqa: E402,F401 (re-export)


@pytest.fixture
def diamond():
    """s -> a,b -> t diamond with mixed weights."""
    #      1        2
    #  s ----> a ----> t
    #  s ----> b ----> t
    #      4        -1
    return graph_from_triples(4, [(0, 1, 1), (0, 2, 4), (1, 3, 2), (2, 3, -1)])


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
