"""Golden model-cost snapshots.

Three canned graphs, each solved with a fixed seed, whose exact
``Cost(work, span, span_model)`` triples are embedded as literals.  Model
costs are pure functions of (graph, seed) — independent of host, wall
clock, and worker-pool size (verified below by forcing a one-worker
pool) — so these are equality assertions, not tolerances: any change to
cost accounting or solver control flow shows up as a precise diff.

Complements ``test_golden_traces.py`` (which pins the *structural*
skeleton and integer counters but deliberately not floating-point
totals) and backs the benchmark pipeline's bit-exact gating claim: if
these pass, ``repro bench compare`` comparing deterministic columns
across commits is comparing like with like.

The literals were captured by running the solver once and embedding its
output.  To re-baseline after an intentional change: rerun, paste the
new triples, and say why in the commit.
"""

from __future__ import annotations

import pytest

from repro.core.sssp import solve_sssp
from repro.graph.generators import hidden_potential_graph, random_digraph
from repro.runtime.metrics import Cost

SEED = 7

# case -> (graph factory, has_negative_cycle,
#          parallel-mode cost, sequential-mode cost)
GOLDEN = {
    "hp16": (
        lambda: hidden_potential_graph(16, 40, seed=1), False,
        Cost(12223.48480433318, 3648.31657066425, 4002.1893692785893),
        Cost(2248.724466734709, 538.0505183611444, 538.0505183611444),
    ),
    "hp24": (
        lambda: hidden_potential_graph(24, 70, seed=2), False,
        Cost(57577.60770578113, 12609.07786968198, 13028.238742383062),
        Cost(8452.471412342344, 1549.2385992589468, 1549.2385992589468),
    ),
    "rd20neg": (
        lambda: random_digraph(20, 50, min_w=-3, max_w=9, seed=5), True,
        Cost(822.9630235435134, 298.7285808111313, 368.4947530607073),
        Cost(184.0, 22.339850002884624, 22.339850002884624),
    ),
}


@pytest.mark.parametrize("case", sorted(GOLDEN))
@pytest.mark.parametrize("mode", ["parallel", "sequential"])
def test_golden_cost(case, mode):
    make, neg, par_cost, seq_cost = GOLDEN[case]
    res = solve_sssp(make(), 0, seed=SEED, mode=mode)
    assert res.has_negative_cycle == neg
    want = par_cost if mode == "parallel" else seq_cost
    assert res.cost == want


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_cost_pool_size_independent(case, monkeypatch):
    """The parallel-mode model cost must not depend on the host's CPU
    count — that is what makes cross-machine bit-exact gating sound."""
    import repro.runtime.executor as executor

    make, _, par_cost, _ = GOLDEN[case]
    monkeypatch.setattr(executor.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(executor, "_default_pool", None)
    try:
        res = solve_sssp(make(), 0, seed=SEED, mode="parallel")
    finally:
        executor._default_pool = None  # do not leak the 1-worker pool
    assert res.cost == par_cost


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_golden_cost_repeatable(case):
    make, _, _, _ = GOLDEN[case]
    a = solve_sssp(make(), 0, seed=SEED)
    b = solve_sssp(make(), 0, seed=SEED)
    assert a.cost == b.cost


@pytest.mark.parametrize("case", sorted(GOLDEN))
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_golden_cost_backend_invariant(case, backend):
    """The execution backend changes *where* blocks run, never *what* is
    computed or charged: model costs (and distances) must be bit-exact
    across serial, thread, and process backends."""
    import numpy as np

    from repro.runtime.backends import (
        ProcessForkJoinPool,
        SerialBackend,
    )
    from repro.runtime.executor import ForkJoinPool

    make, neg, par_cost, _ = GOLDEN[case]
    base = solve_sssp(make(), 0, seed=SEED, mode="parallel")
    be = {
        "serial": lambda: SerialBackend(grain=8),
        "thread": lambda: ForkJoinPool(2, grain=8),
        "process": lambda: ProcessForkJoinPool(2, grain=8,
                                               heartbeat_interval=0.02,
                                               liveness_timeout=1.0),
    }[backend]()
    try:
        res = solve_sssp(make(), 0, seed=SEED, mode="parallel", backend=be)
    finally:
        be.shutdown()
    assert res.has_negative_cycle == neg
    assert res.cost == par_cost
    assert res.cost == base.cost
    if base.dist is not None:
        assert np.array_equal(res.dist, base.dist)


# ---------------------------------------------------------------------------
# per-engine golden costs (the SSSP engine registry)
#
# Same three canned graphs, solved by each non-Goldberg registry engine
# at the same fixed seed.  Captured the same way: run once, embed the
# triple, re-baseline only with an explanation in the commit.

ENGINE_GOLDEN = {
    "bnw_scaling": {
        "hp16": Cost(4792.1456913196635, 825.6112339724759,
                     825.6112339724759),
        "hp24": Cost(10509.05300966929, 1327.1350449587405,
                     1327.1350449587405),
        "rd20neg": Cost(851.0, 194.58414452889807, 194.58414452889807),
    },
    "fischer_simple": {
        "hp16": Cost(1385.4606006033046, 299.130956414956,
                     299.130956414956),
        "hp24": Cost(3278.816287012067, 607.1015863912721,
                     607.1015863912721),
        "rd20neg": Cost(5258.5162929985845, 1205.9756198944747,
                        1205.9756198944747),
    },
}


@pytest.mark.parametrize("engine", sorted(ENGINE_GOLDEN))
@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_engine_golden_cost(engine, case):
    from repro.core.engines import get_sssp_engine

    make, neg, _, _ = GOLDEN[case]
    res = get_sssp_engine(engine).solve(make(), 0, seed=SEED)
    assert res.has_negative_cycle == neg
    assert res.cost == ENGINE_GOLDEN[engine][case]


@pytest.mark.parametrize("engine", sorted(ENGINE_GOLDEN))
@pytest.mark.parametrize("case", sorted(GOLDEN))
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_engine_golden_cost_backend_invariant(engine, case, backend):
    """Registry engines run their block maps on the chosen backend, but
    model costs are charged identically everywhere: the golden triple
    must hold bit-exactly on serial, thread, and process backends (and
    hence at any pool size — the partition is grain-determined)."""
    import numpy as np

    from repro.core.engines import get_sssp_engine
    from repro.runtime.backends import ProcessForkJoinPool, SerialBackend
    from repro.runtime.executor import ForkJoinPool

    make, neg, _, _ = GOLDEN[case]
    eng = get_sssp_engine(engine)
    base = eng.solve(make(), 0, seed=SEED)
    be = {
        "serial": lambda: SerialBackend(grain=8),
        "thread": lambda: ForkJoinPool(2, grain=8),
        "process": lambda: ProcessForkJoinPool(2, grain=8,
                                               heartbeat_interval=0.02,
                                               liveness_timeout=1.0),
    }[backend]()
    try:
        res = eng.solve(make(), 0, seed=SEED, backend=be)
    finally:
        be.shutdown()
    assert res.has_negative_cycle == neg
    assert res.cost == ENGINE_GOLDEN[engine][case]
    assert res.cost == base.cost
    if base.dist is not None:
        assert np.array_equal(res.dist, base.dist)


@pytest.mark.parametrize("engine", sorted(ENGINE_GOLDEN))
@pytest.mark.parametrize("pool_workers", [1, 4])
def test_engine_golden_cost_pool_size_independent(engine, pool_workers):
    """Same cost (and distances) at one worker and four: the thread
    pool's size changes scheduling only, never the charged model."""
    from repro.core.engines import get_sssp_engine
    from repro.runtime.executor import ForkJoinPool

    make, _, _, _ = GOLDEN["hp24"]
    eng = get_sssp_engine(engine)
    be = ForkJoinPool(pool_workers, grain=8)
    try:
        res = eng.solve(make(), 0, seed=SEED, backend=be)
    finally:
        be.shutdown()
    assert res.cost == ENGINE_GOLDEN[engine]["hp24"]
