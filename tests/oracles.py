"""Independent test oracles (networkx-backed; tests only)."""

from __future__ import annotations

import numpy as np

from repro.graph import DiGraph


def nx_sssp_oracle(g: DiGraph, source: int):
    """Bellman-Ford distances via networkx; (dist array, has_neg_cycle).

    "Unreachable" and "not in graph" are different things: a vertex of
    ``g`` that Bellman-Ford never reaches gets ``inf`` in the returned
    array, while a ``source`` outside ``g``'s vertex range raises
    ``ValueError`` — it is a caller bug, not an unreachable vertex, and
    must never be silently conflated with one.
    """
    import networkx as nx

    if not (0 <= source < g.n):
        raise ValueError(
            f"source {source} is not a vertex of this {g.n}-vertex graph")
    G = nx.MultiDiGraph()
    G.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        G.add_edge(u, v, weight=w)
    try:
        lengths = nx.single_source_bellman_ford_path_length(G, source)
    except nx.NetworkXUnbounded:
        return None, True
    dist = np.full(g.n, np.inf)
    for v, d in lengths.items():
        dist[v] = d
    return dist, False


def nx_limited_sssp_oracle(g: DiGraph, source: int, limit: int) -> np.ndarray:
    """Distance-limited SSSP oracle for nonnegative weights.

    Mirrors the ``limited_sssp`` output contract: ``dist[v] = dist(s,v)``
    when it is ``<= limit``, else ``inf`` (also for unreachable vertices).
    Same source-validity rule as :func:`nx_sssp_oracle`.
    """
    import networkx as nx

    if not (0 <= source < g.n):
        raise ValueError(
            f"source {source} is not a vertex of this {g.n}-vertex graph")
    if limit < 0:
        raise ValueError("limit must be nonnegative")
    if g.m and g.w.min() < 0:
        raise ValueError("limited oracle requires nonnegative weights")
    G = nx.MultiDiGraph()
    G.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        G.add_edge(u, v, weight=w)
    lengths = nx.single_source_dijkstra_path_length(G, source)
    dist = np.full(g.n, np.inf)
    for v, d in lengths.items():
        if d <= limit:
            dist[v] = d
    return dist
