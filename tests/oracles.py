"""Independent test oracles (networkx-backed; tests only)."""

from __future__ import annotations

import numpy as np

from repro.graph import DiGraph


def nx_sssp_oracle(g: DiGraph, source: int):
    """Bellman-Ford distances via networkx; (dist array, has_neg_cycle)."""
    import networkx as nx

    G = nx.MultiDiGraph()
    G.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        G.add_edge(u, v, weight=w)
    try:
        lengths = nx.single_source_bellman_ford_path_length(G, source)
    except nx.NetworkXUnbounded:
        return None, True
    dist = np.full(g.n, np.inf)
    for v, d in lengths.items():
        dist[v] = d
    return dist, False
