"""Direct tests of the networkx-backed test oracles themselves.

The oracles certify the solvers everywhere else, so their own contracts
need pinning — in particular the distinction the plain oracle draws
between "unreachable" (``inf``: a legitimate answer about a vertex of
the graph) and "not in graph" (``ValueError``: a caller bug that must
never be silently conflated with unreachability).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import graph_from_triples
from oracles import nx_limited_sssp_oracle, nx_sssp_oracle
from repro.baselines.bellman_ford import bellman_ford
from repro.graph.generators import (
    hidden_potential_graph,
    planted_negative_cycle_graph,
    random_digraph,
)
from repro.limited.limited import limited_sssp


# ---------------------------------------------------------------------------
# nx_sssp_oracle
# ---------------------------------------------------------------------------

class TestSsspOracle:
    def test_unreachable_vertex_gets_inf(self):
        # 0 -> 1, vertex 2 isolated: unreachable, but still a vertex
        g = graph_from_triples(3, [(0, 1, 4)])
        dist, neg = nx_sssp_oracle(g, 0)
        assert not neg
        np.testing.assert_array_equal(dist, [0.0, 4.0, np.inf])

    @pytest.mark.parametrize("source", [-1, 3, 100])
    def test_source_outside_graph_raises(self, source):
        g = graph_from_triples(3, [(0, 1, 4)])
        with pytest.raises(ValueError, match="not a vertex"):
            nx_sssp_oracle(g, source)

    def test_negative_cycle_reported(self):
        g, _ = planted_negative_cycle_graph(12, 36, 3, seed=0)
        dist, neg = nx_sssp_oracle(g, 0)
        assert neg and dist is None

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_bellman_ford_baseline(self, seed):
        g = hidden_potential_graph(20, 60, seed=seed)
        dist, neg = nx_sssp_oracle(g, 0)
        ref = bellman_ford(g, 0)
        assert not neg and not ref.has_negative_cycle
        np.testing.assert_array_equal(dist, ref.dist)

    def test_parallel_edges_use_cheapest(self):
        g = graph_from_triples(2, [(0, 1, 9), (0, 1, 2)])
        dist, _ = nx_sssp_oracle(g, 0)
        assert dist[1] == 2.0


# ---------------------------------------------------------------------------
# nx_limited_sssp_oracle
# ---------------------------------------------------------------------------

class TestLimitedOracle:
    def test_beyond_limit_is_inf(self):
        # chain 0 -2-> 1 -3-> 2 -4-> 3: distances 0, 2, 5, 9
        g = graph_from_triples(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4)])
        np.testing.assert_array_equal(
            nx_limited_sssp_oracle(g, 0, 5), [0.0, 2.0, 5.0, np.inf])
        np.testing.assert_array_equal(
            nx_limited_sssp_oracle(g, 0, 4), [0.0, 2.0, np.inf, np.inf])
        np.testing.assert_array_equal(
            nx_limited_sssp_oracle(g, 0, 0), [0.0, np.inf, np.inf, np.inf])

    @pytest.mark.parametrize("source", [-2, 4])
    def test_source_outside_graph_raises(self, source):
        g = graph_from_triples(4, [(0, 1, 2)])
        with pytest.raises(ValueError, match="not a vertex"):
            nx_limited_sssp_oracle(g, source, 5)

    def test_negative_limit_rejected(self):
        g = graph_from_triples(2, [(0, 1, 2)])
        with pytest.raises(ValueError, match="nonnegative"):
            nx_limited_sssp_oracle(g, 0, -1)

    def test_negative_weights_rejected(self):
        g = graph_from_triples(2, [(0, 1, -2)])
        with pytest.raises(ValueError, match="nonnegative"):
            nx_limited_sssp_oracle(g, 0, 5)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_limited_sssp_solver(self, seed):
        g = random_digraph(18, 54, min_w=0, max_w=7, seed=seed)
        limit = 2 + seed
        res = limited_sssp(g, 0, limit)
        assert res.verified
        np.testing.assert_array_equal(
            res.dist, nx_limited_sssp_oracle(g, 0, limit))

    def test_limit_larger_than_diameter_equals_plain_oracle(self):
        g = random_digraph(16, 48, min_w=0, max_w=5, seed=3)
        full, neg = nx_sssp_oracle(g, 0)
        assert not neg
        np.testing.assert_array_equal(
            nx_limited_sssp_oracle(g, 0, 10 ** 6), full)
