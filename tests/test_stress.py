"""Moderate-scale stress tests: the pipeline at thousands of vertices.

These run in a few seconds each and guard against superlinear blow-ups
(like the SCC degeneration found during development, see ALGORITHMS.md §3).
"""

import time

import numpy as np

from repro.baselines import bellman_ford
from repro.core import solve_sssp
from repro.dag01 import dag01_limited_sssp
from repro.graph import (
    bf_hard_graph,
    hidden_potential_graph,
    layered_dag,
    planted_negative_cycle_graph,
    validate_negative_cycle,
)
from repro.limited import limited_sssp
from repro.reach import scc, scc_sequential


class TestScale:
    def test_solver_n3000(self):
        g = bf_hard_graph(3000, 9000, seed=0)
        t0 = time.perf_counter()
        res = solve_sssp(g, 0, seed=0)
        elapsed = time.perf_counter() - t0
        np.testing.assert_array_equal(res.dist, bellman_ford(g, 0).dist)
        assert elapsed < 60, f"solver too slow: {elapsed:.1f}s"
        # work advantage over Bellman-Ford must hold at this size (E9)
        assert res.cost.work < bellman_ford(g, 0).cost.work

    def test_peeling_n5000(self):
        g = layered_dag(50, 100, p_negative=0.5, seed=1)
        assert g.n == 5001
        res = dag01_limited_sssp(g, 0, 50, seed=1)
        from repro.baselines import dag_limited_sssp_reference

        np.testing.assert_array_equal(
            res.dist, dag_limited_sssp_reference(g, 0, 50))

    def test_limited_n3000(self):
        from repro.baselines import dijkstra
        from repro.graph import zero_heavy_digraph

        g = zero_heavy_digraph(3000, 12000, p_zero=0.4, seed=2)
        res = limited_sssp(g, 0, 20)
        np.testing.assert_array_equal(res.dist,
                                      dijkstra(g, 0, limit=20).dist)

    def test_scc_path_pathology(self):
        """The pre-fix degeneration case: a long path whose ≤0 subgraph is
        mostly disconnected must not take Θ(n) reachability rounds."""
        g = bf_hard_graph(4000, 12000, seed=3)
        from repro.graph import leq_zero_subgraph
        from repro.runtime import CostAccumulator

        sub, _ = leq_zero_subgraph(g, g.w)
        acc = CostAccumulator()
        par = scc(sub, acc)
        seq = scc_sequential(sub)
        assert par.n_components == seq.n_components
        # batched algorithm: work stays within polylog of the edge count
        assert acc.work < 60 * (sub.m + sub.n) * np.log2(sub.n + 2)

    def test_cycle_detection_n2000(self):
        g, _ = planted_negative_cycle_graph(2000, 8000, 6, seed=4)
        res = solve_sssp(g, 0, seed=4)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)

    def test_deeply_scaled_weights(self):
        g = hidden_potential_graph(400, 1600, potential_spread=1_000_000,
                                   seed=5)
        res = solve_sssp(g, 0, seed=5)
        assert len(res.stats.scales) >= 19  # log2(1e6) ≈ 20
        np.testing.assert_array_equal(res.dist, bellman_ford(g, 0).dist)
