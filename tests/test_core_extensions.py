"""Tests for the extension APIs (APSP, DAG longest paths, difference
constraints) and the extra baselines (Dial, threaded Bellman–Ford)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    bellman_ford,
    bellman_ford_threaded,
    dial_sssp,
    dijkstra,
)
from repro.core import (
    all_pairs_shortest_paths,
    dag_longest_paths,
    solve_difference_constraints,
)
from repro.graph import (
    DiGraph,
    hidden_potential_graph,
    negative_chain_gadget,
    planted_negative_cycle_graph,
    random_dag,
    random_digraph,
    validate_negative_cycle,
)
from repro.runtime import CostAccumulator, ForkJoinPool


class TestAllPairs:
    def test_small(self):
        g = DiGraph.from_edges(3, [(0, 1, 4), (1, 2, -7), (0, 2, 1)])
        res = all_pairs_shortest_paths(g)
        assert not res.has_negative_cycle
        np.testing.assert_array_equal(
            res.dist, [[0, 4, -3], [np.inf, 0, -7], [np.inf, np.inf, 0]])

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_per_source_bellman_ford(self, seed):
        g = hidden_potential_graph(18, 80, seed=seed)
        res = all_pairs_shortest_paths(g, seed=seed)
        for s in range(g.n):
            np.testing.assert_array_equal(res.dist[s],
                                          bellman_ford(g, s).dist)

    def test_sources_subset(self):
        g = hidden_potential_graph(15, 60, seed=1)
        res = all_pairs_shortest_paths(g, sources=np.array([3, 7]))
        assert res.dist.shape == (2, 15)
        np.testing.assert_array_equal(res.dist[0], bellman_ford(g, 3).dist)
        np.testing.assert_array_equal(res.dist[1], bellman_ford(g, 7).dist)

    def test_negative_cycle(self):
        g, _ = planted_negative_cycle_graph(15, 60, 3, seed=2)
        res = all_pairs_shortest_paths(g)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)
        assert res.dist is None

    def test_parallel_dijkstra_span(self):
        """Per-source Dijkstras compose in parallel: the span of solving
        all n sources barely exceeds the span of solving one."""
        g = hidden_potential_graph(20, 80, seed=3)
        acc_all = CostAccumulator()
        all_pairs_shortest_paths(g, acc=acc_all, seed=3)
        acc_one = CostAccumulator()
        all_pairs_shortest_paths(g, acc=acc_one, seed=3,
                                 sources=np.array([0]))
        assert acc_all.work > acc_one.work * 1.3    # work scales with rows
        assert acc_all.span_model < acc_one.span_model * 1.2  # span doesn't


class TestDagLongestPaths:
    def test_chain(self):
        g = negative_chain_gadget(4)  # weights -1; flip to +1
        g = g.with_weights(-g.w)
        res = dag_longest_paths(g, 0, limit=4)
        assert res.dist.tolist() == [0, 1, 2, 3, 4]

    def test_limit(self):
        g = negative_chain_gadget(5)
        g = g.with_weights(-g.w)
        res = dag_longest_paths(g, 0, limit=3)
        assert res.dist[3] == 3
        assert res.dist[4] == np.inf  # longest path exceeds the limit
        assert res.dist[5] == np.inf

    def test_unreachable_minus_inf(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        res = dag_longest_paths(g, 0, limit=4)
        assert res.dist[2] == -np.inf

    def test_rejects_bad_weights(self):
        g = DiGraph.from_edges(2, [(0, 1, 3)])
        with pytest.raises(ValueError, match="0, 1"):
            dag_longest_paths(g, 0, limit=2)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_negated_reference(self, seed):
        from repro.baselines import dag_sssp

        g = random_dag(25, 100, weights=(0, 1), seed=seed)
        res = dag_longest_paths(g, 0, limit=30)
        ref = dag_sssp(g.with_weights(-g.w), 0)
        expect = -ref.dist
        # limit 30 is generous; exact everywhere reachable
        finite = np.isfinite(expect)
        np.testing.assert_array_equal(res.dist[finite], expect[finite])


class TestDifferenceConstraints:
    def test_feasible_system(self):
        #  x1 - x0 <= 0 ; x2 - x1 <= -1 ; x2 - x0 <= -3
        res = solve_difference_constraints(
            3, [(0, 1, 0), (1, 2, -1), (0, 2, -3)])
        assert res.feasible
        x = res.assignment
        assert x[1] - x[0] <= 0
        assert x[2] - x[1] <= -1
        assert x[2] - x[0] <= -3

    def test_infeasible_system(self):
        # x1 - x0 <= -1 and x0 - x1 <= 0  =>  0 <= -1, contradiction
        res = solve_difference_constraints(2, [(0, 1, -1), (1, 0, 0)])
        assert not res.feasible
        assert set(res.infeasible_cycle) <= {0, 1}

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.integers(-3, 6)), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_solution_satisfies_all(self, raw):
        constraints = [(i, j, c) for i, j, c in raw if i != j]
        res = solve_difference_constraints(6, constraints)
        if res.feasible:
            x = res.assignment
            for i, j, c in constraints:
                assert x[j] - x[i] <= c
        else:
            # certificate must be a genuinely contradictory cycle: the sum
            # of constraint constants around it is negative
            cyc = res.infeasible_cycle
            lookup = {}
            for i, j, c in constraints:
                lookup[(i, j)] = min(lookup.get((i, j), c), c)
            total = sum(lookup[(cyc[k], cyc[(k + 1) % len(cyc)])]
                        for k in range(len(cyc)))
            assert total < 0


class TestDial:
    def test_matches_dijkstra(self):
        g = random_digraph(30, 150, min_w=0, max_w=6, seed=0)
        np.testing.assert_array_equal(dial_sssp(g, 0).dist,
                                      dijkstra(g, 0).dist)

    def test_limit(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, 5)])
        res = dial_sssp(g, 0, limit=4)
        assert res.dist.tolist() == [0, 2, np.inf]

    def test_rejects_negative(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(ValueError):
            dial_sssp(g, 0)

    def test_zero_weights(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)])
        assert dial_sssp(g, 0).dist.tolist() == [0, 0, 0]

    @given(st.integers(0, 5000), st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_property_limited(self, seed, limit):
        g = random_digraph(15, 60, min_w=0, max_w=4, seed=seed)
        got = dial_sssp(g, 0, limit=limit).dist
        expect = dijkstra(g, 0, limit=limit).dist
        np.testing.assert_array_equal(got, expect)


class TestThreadedBellmanFord:
    def test_matches_reference_without_pool(self):
        g = hidden_potential_graph(25, 100, seed=4)
        a = bellman_ford_threaded(g, 0)
        b = bellman_ford(g, 0)
        np.testing.assert_array_equal(a.dist, b.dist)

    def test_matches_reference_with_pool(self):
        g = hidden_potential_graph(40, 200, seed=5)
        with ForkJoinPool(n_workers=3) as pool:
            a = bellman_ford_threaded(g, 0, pool=pool, grain=32)
        b = bellman_ford(g, 0)
        np.testing.assert_array_equal(a.dist, b.dist)

    def test_negative_cycle_delegates(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -3), (2, 1, 1)])
        with ForkJoinPool(n_workers=2) as pool:
            res = bellman_ford_threaded(g, 0, pool=pool, grain=1)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)
