"""Tests for the ASSSP engines against the black-box contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assp import (
    DeltaSteppingAssp,
    ExactAssp,
    FlakyAssp,
    PerturbedAssp,
    get_engine,
)
from repro.baselines import dijkstra
from repro.graph import DiGraph, random_digraph, zero_heavy_digraph
from repro.runtime import CostAccumulator


def contract_holds(g, source, eps, d_prime, exact=None):
    """dist <= d' everywhere; d' <= (1+eps) dist where finite."""
    if exact is None:
        exact = dijkstra(g, source).dist
    over = d_prime >= exact - 1e-9
    finite = np.isfinite(exact)
    within = d_prime[finite] <= (1 + eps) * exact[finite] + 1e-9
    return bool(over.all()) and bool(within.all())


ENGINES = [ExactAssp(), PerturbedAssp(seed=1), DeltaSteppingAssp()]


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.name)
class TestContract:
    def test_small_graph(self, engine):
        g = DiGraph.from_edges(4, [(0, 1, 2), (1, 2, 3), (0, 3, 10),
                                   (2, 3, 1)])
        d = engine(g, 0, eps=0.25)
        assert contract_holds(g, 0, 0.25, d)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, engine, seed):
        g = random_digraph(40, 200, min_w=0, max_w=9, seed=seed)
        d = engine(g, 0, eps=0.2)
        assert contract_holds(g, 0, 0.2, d)

    def test_zero_heavy(self, engine):
        g = zero_heavy_digraph(30, 150, p_zero=0.7, seed=0)
        d = engine(g, 0, eps=0.25)
        assert contract_holds(g, 0, 0.25, d)

    def test_unreachable_infinite(self, engine):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        d = engine(g, 0, eps=0.5)
        assert d[2] == np.inf

    def test_source_zero(self, engine):
        g = DiGraph.from_edges(2, [(0, 1, 5)])
        assert engine(g, 0, eps=0.5)[0] == 0

    def test_oracle_cost_charged(self, engine):
        g = random_digraph(50, 200, min_w=0, max_w=5, seed=1)
        acc = CostAccumulator()
        engine(g, 0, eps=0.5, acc=acc)
        assert acc.work > 0
        assert acc.span_model > 0


class TestPerturbed:
    def test_actually_perturbs(self):
        g = random_digraph(60, 300, min_w=1, max_w=9, seed=2)
        engine = PerturbedAssp(seed=3)
        d = engine(g, 0, eps=0.5)
        exact = dijkstra(g, 0).dist
        finite = np.isfinite(exact) & (exact > 0)
        assert (d[finite] > exact[finite]).any()

    def test_resamples_each_call(self):
        g = random_digraph(40, 150, min_w=1, max_w=9, seed=2)
        engine = PerturbedAssp(seed=3)
        d1 = engine(g, 0, eps=0.5)
        d2 = engine(g, 0, eps=0.5)
        assert not np.array_equal(d1, d2)


class TestDeltaStepping:
    def test_exact_distances(self):
        g = random_digraph(50, 250, min_w=0, max_w=12, seed=4)
        d = DeltaSteppingAssp()(g, 0, eps=0.1)
        np.testing.assert_allclose(d, dijkstra(g, 0).dist)

    def test_explicit_delta(self):
        g = random_digraph(30, 120, min_w=1, max_w=9, seed=5)
        d = DeltaSteppingAssp(delta=3)(g, 0, eps=0.1)
        np.testing.assert_allclose(d, dijkstra(g, 0).dist)

    def test_rejects_negative(self):
        g = DiGraph.from_edges(2, [(0, 1, -1)])
        with pytest.raises(ValueError):
            DeltaSteppingAssp()(g, 0, eps=0.1)

    def test_all_zero_weights(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 2, 0)])
        d = DeltaSteppingAssp()(g, 0, eps=0.1)
        assert d.tolist() == [0, 0, 0]

    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_property_exact(self, seed):
        g = random_digraph(20, 70, min_w=0, max_w=7, seed=seed)
        d = DeltaSteppingAssp()(g, 0, eps=0.1)
        np.testing.assert_allclose(d, dijkstra(g, 0).dist)


class TestFlaky:
    def test_never_underestimates(self):
        g = random_digraph(40, 150, min_w=1, max_w=9, seed=6)
        engine = FlakyAssp(p_fail=1.0, seed=7)
        exact = dijkstra(g, 0).dist
        for _ in range(5):
            d = engine(g, 0, eps=0.25)
            finite = np.isfinite(exact)
            assert (d[finite] >= exact[finite] - 1e-9).all()

    def test_violates_epsilon_when_failing(self):
        g = random_digraph(60, 400, min_w=2, max_w=9, seed=8)
        engine = FlakyAssp(p_fail=1.0, seed=9)
        exact = dijkstra(g, 0).dist
        d = engine(g, 0, eps=0.25)
        finite = np.isfinite(exact) & (exact > 0)
        assert (d[finite] > 1.25 * exact[finite]).any()
        assert engine.failures == 1

    def test_no_failures_at_zero_prob(self):
        g = random_digraph(30, 120, min_w=0, max_w=5, seed=10)
        engine = FlakyAssp(p_fail=0.0, seed=11)
        d = engine(g, 0, eps=0.25)
        assert contract_holds(g, 0, 0.25, d)
        assert engine.failures == 0


class TestFactory:
    @pytest.mark.parametrize("name", ["exact", "perturbed",
                                      "delta-stepping", "flaky"])
    def test_known_names(self, name):
        assert get_engine(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_engine("magic")

    def test_kwargs_forwarded(self):
        assert get_engine("flaky", p_fail=0.9).p_fail == 0.9
