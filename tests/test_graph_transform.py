"""Tests for reweighting, condensation, and edge subgraphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    condense,
    edge_subgraph_mask,
    leq_zero_subgraph,
    reweight,
)


class TestReweight:
    def test_telescopes_on_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1, 2), (1, 2, -1), (2, 0, 4)])
        p = np.array([5, -3, 2])
        rw = reweight(g, p)
        assert rw.sum() == g.w.sum()  # cycle weight invariant

    def test_formula(self):
        g = DiGraph.from_edges(2, [(0, 1, 7)])
        rw = reweight(g, np.array([1, 4]))
        assert rw.tolist() == [7 + 1 - 4]

    def test_length_check(self):
        g = DiGraph.from_edges(2, [(0, 1, 7)])
        with pytest.raises(ValueError):
            reweight(g, np.array([0]))

    @given(st.integers(3, 8), st.data())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_order_preserved(self, n, data):
        """Reweighting changes all s->t path lengths by the same offset."""
        edges = []
        for u in range(n - 1):
            edges.append((u, u + 1, data.draw(st.integers(-3, 3))))
        edges.append((0, n - 1, data.draw(st.integers(-3, 3))))
        g = DiGraph.from_edges(n, edges)
        p = np.array([data.draw(st.integers(-5, 5)) for _ in range(n)])
        rw = reweight(g, p)
        # path 0->..->n-1 and direct edge 0->n-1 shift by p[0]-p[n-1] both
        chain_ids = [i for i in range(g.m)
                     if not (g.src[i] == 0 and g.dst[i] == n - 1)]
        direct = [i for i in range(g.m)
                  if g.src[i] == 0 and g.dst[i] == n - 1][0]
        shift_chain = rw[chain_ids].sum() - g.w[chain_ids].sum()
        shift_direct = rw[direct] - g.w[direct]
        assert shift_chain == shift_direct == p[0] - p[n - 1]


class TestCondense:
    def test_basic_contraction(self):
        # two components {0,1} and {2}; parallel contracted edges collapse
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 0, 0), (0, 2, 5),
                                   (1, 2, 3)])
        c = condense(g, np.array([0, 0, 1]))
        assert c.n_components == 2
        assert c.graph.m == 1
        assert list(c.graph.edges()) == [(0, 1, 3)]  # min of 5 and 3

    def test_rep_eid_points_to_min_weight_edge(self):
        g = DiGraph.from_edges(3, [(0, 1, 0), (1, 0, 0), (0, 2, 5),
                                   (1, 2, 3)])
        c = condense(g, np.array([0, 0, 1]))
        eid = int(c.rep_eid[0])
        assert g.w[eid] == 3
        assert (g.src[eid], g.dst[eid]) == (1, 2)

    def test_members(self):
        g = DiGraph.from_edges(4, [(0, 1, 1)])
        c = condense(g, np.array([1, 0, 1, 2]))
        assert sorted(c.members[1].tolist()) == [0, 2]
        assert c.members[0].tolist() == [1]
        assert c.members[2].tolist() == [3]

    def test_intra_component_edges_dropped(self):
        g = DiGraph.from_edges(2, [(0, 1, -1), (1, 0, 0)])
        c = condense(g, np.array([0, 0]))
        assert c.graph.m == 0

    def test_custom_weights(self):
        g = DiGraph.from_edges(2, [(0, 1, 100)])
        c = condense(g, np.array([0, 1]), weights=np.array([-7]))
        assert list(c.graph.edges()) == [(0, 1, -7)]

    def test_empty_graph(self):
        g = DiGraph.from_edges(0, [])
        c = condense(g, np.array([], dtype=np.int64))
        assert c.n_components == 0

    def test_label_validation(self):
        g = DiGraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError):
            condense(g, np.array([0]))
        with pytest.raises(ValueError):
            condense(g, np.array([-1, 0]))

    @given(st.integers(2, 12), st.integers(1, 4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_condensation_edges_property(self, n, nc, data):
        """Every contracted edge is the min over its original bundle."""
        m = data.draw(st.integers(0, 30))
        edges = [(data.draw(st.integers(0, n - 1)),
                  data.draw(st.integers(0, n - 1)),
                  data.draw(st.integers(-5, 5))) for _ in range(m)]
        g = DiGraph.from_edges(n, edges)
        comp = np.array([data.draw(st.integers(0, nc - 1)) for _ in range(n)])
        comp[0] = nc - 1  # ensure the max id appears
        c = condense(g, comp)
        bundles: dict[tuple[int, int], int] = {}
        for u, v, w in g.edges():
            cu, cv = int(comp[u]), int(comp[v])
            if cu != cv:
                key = (cu, cv)
                bundles[key] = min(bundles.get(key, w), w)
        got = {(u, v): w for u, v, w in c.graph.edges()}
        assert got == bundles


class TestEdgeSubgraphs:
    def test_edge_subgraph_mask(self):
        g = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, 2)])
        h = edge_subgraph_mask(g, np.array([True, False]))
        assert list(h.edges()) == [(0, 1, 1)]
        assert h.n == 3

    def test_mask_length_check(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            edge_subgraph_mask(g, np.array([True, False]))

    def test_leq_zero_subgraph(self):
        g = DiGraph.from_edges(3, [(0, 1, -1), (1, 2, 0), (2, 0, 3)])
        sub, eids = leq_zero_subgraph(g)
        assert sub.m == 2
        assert sorted((u, v) for u, v, _ in sub.edges()) == [(0, 1), (1, 2)]
        # eids aligned with subgraph edge ids
        for i, (u, v, w) in enumerate(sub.edges()):
            eid = int(eids[i])
            assert (g.src[eid], g.dst[eid], g.w[eid]) == (u, v, w)

    def test_leq_zero_with_reduced_weights(self):
        g = DiGraph.from_edges(2, [(0, 1, 5)])
        sub, eids = leq_zero_subgraph(g, weights=np.array([-2]))
        assert sub.m == 1 and sub.w.tolist() == [-2]
