"""Unit tests for Appendix A.2 cycle extraction machinery."""

import numpy as np
import pytest

from repro.core.cycle import (
    CycleExtractionError,
    cycle_from_scc_negative_edge,
    expand_contracted_cycle,
    fallback_cycle,
)
from repro.graph import (
    DiGraph,
    condense,
    validate_negative_cycle,
)
from repro.reach import scc_sequential


class TestFallbackCycle:
    def test_finds_cycle(self):
        g = DiGraph.from_edges(3, [(0, 1, -2), (1, 2, 0), (2, 0, 1)])
        cyc = fallback_cycle(g)
        assert validate_negative_cycle(g, cyc)

    def test_raises_when_none(self):
        g = DiGraph.from_edges(2, [(0, 1, -5)])
        with pytest.raises(CycleExtractionError):
            fallback_cycle(g)

    def test_respects_weight_override(self):
        g = DiGraph.from_edges(2, [(0, 1, 1), (1, 0, 1)])
        w = np.array([-2, 1])
        cyc = fallback_cycle(g, w)
        assert validate_negative_cycle(g, cyc, w)


class TestStep1Cycle:
    def test_simple_component(self):
        # component {0,1,2} strongly connected via <=0 edges; edge (0,1) is
        # the negative one
        g = DiGraph.from_edges(3, [(0, 1, -1), (1, 2, 0), (2, 0, 0)])
        comp = scc_sequential(g).comp  # whole graph one SCC here
        eid = int(np.flatnonzero(g.w == -1)[0])
        cyc = cycle_from_scc_negative_edge(g, g.w, comp, eid)
        assert validate_negative_cycle(g, cyc)

    def test_component_with_detour(self):
        g = DiGraph.from_edges(5, [(0, 1, -1), (1, 2, 0), (2, 3, 0),
                                   (3, 0, 0), (1, 4, 0), (0, 4, 3)])
        comp = np.array([0, 0, 0, 0, 1])
        eid = int(np.flatnonzero(g.w == -1)[0])
        cyc = cycle_from_scc_negative_edge(g, g.w, comp, eid)
        assert validate_negative_cycle(g, cyc)
        assert 4 not in cyc  # stays inside the component

    def test_missing_path_raises(self):
        # mislabelled components: no b->a path of <=0 edges inside
        g = DiGraph.from_edges(3, [(0, 1, -1), (1, 2, 5), (2, 0, 0)])
        comp = np.zeros(3, dtype=np.int64)  # (wrong) single component
        eid = int(np.flatnonzero(g.w == -1)[0])
        with pytest.raises(CycleExtractionError):
            cycle_from_scc_negative_edge(g, g.w, comp, eid)


class TestExpandContractedCycle:
    def make_two_component_cycle(self):
        """Components {0,1} and {2,3} strongly connected by 0-weight edges;
        contracted 2-cycle between them is negative."""
        g = DiGraph.from_edges(4, [
            (0, 1, 0), (1, 0, 0),          # component A
            (2, 3, 0), (3, 2, 0),          # component B
            (1, 2, -1),                    # A -> B (negative)
            (3, 0, 0),                     # B -> A
        ])
        comp = np.array([0, 0, 1, 1])
        cond = condense(g, comp)
        return g, cond

    def test_expands_through_components(self):
        g, cond = self.make_two_component_cycle()
        cyc = expand_contracted_cycle(g, g.w, cond, [0, 1])
        assert validate_negative_cycle(g, cyc)

    def test_single_component_hop(self):
        g = DiGraph.from_edges(2, [(0, 1, -1), (1, 0, 0)])
        cond = condense(g, np.array([0, 1]))
        cyc = expand_contracted_cycle(g, g.w, cond, [0, 1])
        assert validate_negative_cycle(g, cyc)

    def test_missing_hop_raises(self):
        g, cond = self.make_two_component_cycle()
        with pytest.raises(CycleExtractionError):
            expand_contracted_cycle(g, g.w, cond, [1, 1])

    def test_empty_cycle_raises(self):
        g, cond = self.make_two_component_cycle()
        with pytest.raises(CycleExtractionError):
            expand_contracted_cycle(g, g.w, cond, [])


class TestEndToEndExtractionPaths:
    """Force each of the detection sites and check no fallback is used."""

    @pytest.fixture(autouse=True)
    def forbid_fallback(self, monkeypatch):
        import repro.core.cycle as cyclemod

        def boom(*a, **k):
            raise AssertionError("fallback_cycle should not be needed")

        # improvement.py calls through the module attribute
        monkeypatch.setattr(cyclemod, "fallback_cycle", boom)

    def test_step1_site(self):
        from repro.core import sqrt_k_improvement

        g = DiGraph.from_edges(3, [(0, 1, -1), (1, 2, 0), (2, 0, 0)])
        out = sqrt_k_improvement(g, g.w)
        assert out.method == "cycle"
        assert validate_negative_cycle(g, out.negative_cycle)

    def test_step3_site(self):
        from repro.core import sqrt_k_improvement

        # mixed-sign ring invisible to Step 1
        g = DiGraph.from_edges(5, [(0, 1, -1), (1, 2, -1), (2, 3, -1),
                                   (3, 4, -1), (4, 0, 1)])
        out = sqrt_k_improvement(g, g.w)
        assert out.method == "cycle"
        assert validate_negative_cycle(g, out.negative_cycle)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mixed_graphs_no_fallback(self, seed):
        from repro.core import solve_sssp
        from repro.graph import random_digraph

        g = random_digraph(18, 60, min_w=-2, max_w=5, seed=seed)
        res = solve_sssp(g, 0, seed=seed)
        if res.has_negative_cycle:
            assert validate_negative_cycle(g, res.negative_cycle)
