"""Tests for parallel ordered sets and the vector-of-sets (§3.5, §4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import CostAccumulator, SetVector, SortedIntSet


class TestSortedIntSet:
    def test_empty(self):
        s = SortedIntSet()
        assert len(s) == 0
        assert 5 not in s

    def test_init_dedupes_and_sorts(self):
        s = SortedIntSet(np.array([3, 1, 3, 2]))
        assert s.to_list() == [1, 2, 3]

    def test_contains(self):
        s = SortedIntSet(np.array([10, 20, 30]))
        assert 20 in s and 15 not in s and 40 not in s

    def test_merge_into_empty(self):
        s = SortedIntSet()
        s.merge(np.array([5, 1]))
        assert s.to_list() == [1, 5]

    def test_merge_empty_arg(self):
        s = SortedIntSet(np.array([1]))
        s.merge(np.array([], dtype=np.int64))
        assert s.to_list() == [1]

    def test_merge_overlapping(self):
        s = SortedIntSet(np.array([1, 3]))
        s.merge(SortedIntSet(np.array([2, 3, 4])))
        assert s.to_list() == [1, 2, 3, 4]

    def test_merge_charges_cost(self):
        acc = CostAccumulator()
        s = SortedIntSet(np.arange(100))
        s.merge(np.arange(100, 110), acc)
        assert acc.work > 0 and acc.span > 0

    def test_enumerate_readonly(self):
        s = SortedIntSet(np.array([1, 2]))
        view = s.enumerate()
        with pytest.raises(ValueError):
            view[0] = 9

    def test_clear(self):
        s = SortedIntSet(np.array([1, 2]))
        s.clear()
        assert len(s) == 0

    def test_difference_update(self):
        s = SortedIntSet(np.array([1, 2, 3, 4]))
        s.difference_update(np.array([2, 4, 9]))
        assert s.to_list() == [1, 3]

    def test_difference_update_empty(self):
        s = SortedIntSet(np.array([1]))
        s.difference_update(np.array([], dtype=np.int64))
        assert s.to_list() == [1]

    @given(st.lists(st.integers(0, 50), max_size=40),
           st.lists(st.integers(0, 50), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_set_union(self, a, b):
        s = SortedIntSet(np.array(a, dtype=np.int64))
        s.merge(np.array(b, dtype=np.int64))
        assert s.to_list() == sorted(set(a) | set(b))


class TestSetVector:
    def test_init_sizes(self):
        vs = SetVector(5)
        assert len(vs) == 5
        assert all(vs.size(i) == 0 for i in range(5))

    def test_add_and_gather(self):
        vs = SetVector(3)
        vs.add_batch(0, np.array([1, 2]))
        vs.add_batch(2, np.array([5]))
        out = vs.gather([0, 1, 2])
        assert sorted(out.tolist()) == [1, 2, 5]

    def test_gather_empty_idents(self):
        vs = SetVector(3)
        assert vs.gather([]).tolist() == []

    def test_clear_many(self):
        vs = SetVector(3)
        vs.add_batch(0, np.array([1]))
        vs.add_batch(1, np.array([2]))
        vs.clear_many([0])
        assert vs.size(0) == 0 and vs.size(1) == 1

    def test_add_batch_dedupes(self):
        vs = SetVector(1)
        vs.add_batch(0, np.array([1, 1, 2]))
        vs.add_batch(0, np.array([2, 3]))
        assert vs.size(0) == 3

    def test_costs_charged(self):
        acc = CostAccumulator()
        vs = SetVector(4, acc)
        vs.add_batch(0, np.arange(10), acc)
        vs.gather([0, 1], acc)
        assert acc.work >= 10
