"""Tests for the cost-model formulas and stage tagging."""

import math

import pytest

from repro.runtime import CostAccumulator, CostModel, DEFAULT_MODEL, lg


class TestFormulas:
    def test_lg_smoothed(self):
        assert lg(0) == 1.0  # log2(2)
        assert lg(2) == 2.0
        assert lg(14) == 4.0

    def test_map_linear_work_log_span(self):
        c = DEFAULT_MODEL.map(1000)
        assert c.work == 1000
        assert c.span == pytest.approx(lg(1000))

    def test_map_per_item_work(self):
        assert DEFAULT_MODEL.map(10, per_item_work=2.5).work == 25

    def test_degenerate_sizes_cost_at_least_one(self):
        for fn in (DEFAULT_MODEL.map, DEFAULT_MODEL.reduce,
                   DEFAULT_MODEL.scan, DEFAULT_MODEL.sort):
            assert fn(0).work >= 1
            assert fn(0).span > 0

    def test_sort_n_log_n(self):
        c = DEFAULT_MODEL.sort(1 << 10)
        assert c.work == pytest.approx((1 << 10) * lg(1 << 10))
        assert c.span == pytest.approx(lg(1 << 10) ** 2)

    def test_set_merge_small_into_big(self):
        c = DEFAULT_MODEL.set_merge(8, 1 << 16)
        # m lg(n/m) growth: merging few into many is cheap
        assert c.work < DEFAULT_MODEL.set_merge(1 << 15, 1 << 16).work

    def test_oracle_span_sqrt_shape(self):
        m = DEFAULT_MODEL
        assert m.oracle_span(400) / m.oracle_span(100) == pytest.approx(
            2 * lg(400) / lg(100), rel=1e-9)

    def test_oracle_span_exponent_configurable(self):
        steep = CostModel(reach_span_exponent=1.0)
        assert steep.oracle_span(100) > DEFAULT_MODEL.oracle_span(100)

    def test_dijkstra_span_linearish(self):
        c = DEFAULT_MODEL.dijkstra(100, 500)
        assert c.span == pytest.approx(100 * lg(100))

    def test_bfs_round(self):
        c = DEFAULT_MODEL.bfs_round(25, 1000)
        assert c.work == 25
        assert c.span == pytest.approx(lg(1000))

    def test_monotone_in_size(self):
        m = DEFAULT_MODEL
        for fn in (m.map, m.reduce, m.scan, m.pack, m.sort,
                   m.set_enumerate):
            assert fn(2000).work >= fn(20).work
            assert fn(2000).span >= fn(20).span


class TestStageTagging:
    def test_single_stage(self):
        acc = CostAccumulator()
        with acc.stage("a"):
            acc.charge(10, 2)
        assert acc.stages["a"].work == 10
        assert acc.stages["a"].span == 2

    def test_stage_accumulates_across_entries(self):
        acc = CostAccumulator()
        for _ in range(3):
            with acc.stage("a"):
                acc.charge(5, 1)
        assert acc.stages["a"].work == 15

    def test_untagged_charges_not_attributed(self):
        acc = CostAccumulator()
        acc.charge(7, 7)
        with acc.stage("a"):
            acc.charge(3, 3)
        assert acc.stages["a"].work == 3
        assert acc.work == 10

    def test_stage_records_on_exception(self):
        acc = CostAccumulator()
        with pytest.raises(RuntimeError):
            with acc.stage("a"):
                acc.charge(4, 4)
                raise RuntimeError("boom")
        assert acc.stages["a"].work == 4

    def test_merge_stages_from(self):
        a, b = CostAccumulator(), CostAccumulator()
        with a.stage("x"):
            a.charge(1, 1)
        with b.stage("x"):
            b.charge(2, 2)
        with b.stage("y"):
            b.charge(5, 5)
        a.merge_stages_from(b)
        assert a.stages["x"].work == 3
        assert a.stages["y"].work == 5

    def test_stage_tracks_model_span(self):
        acc = CostAccumulator()
        with acc.stage("a"):
            acc.charge(10, span=1, span_model=8)
        assert acc.stages["a"].span == 1
        assert acc.stages["a"].span_model == 8
