"""Invariant layer for the tracing subsystem (``-m observability``).

Three families of guarantees:

* **metamorphic algebra** (hypothesis): on randomly generated span trees
  with integer charges satisfying ``span <= work`` per charge, the tracer
  reproduces the cost model's composition laws exactly — child work sums
  to parent work, ``span <= work`` everywhere, and a parallel region's
  span is the max of its branch spans (work still sums);
* **ledger bit-match** on real solves: across 50 random graphs the trace
  root totals equal ``res.cost``, the caller's ``CostAccumulator``, and
  the per-stage span sums equal the ``acc.stages`` buckets that feed the
  A4 breakdown — and the span structure matches ``ScalingStats``
  (scales, iterations, methods) and the certificate;
* **exporters**: JSONL round-trips losslessly, the Chrome trace is a
  valid ``traceEvents`` document, and tracing disabled is a no-op that
  leaves results bit-identical.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tracetables import (
    STAGE_SPAN_NAMES,
    trace_cost_breakdown,
    trace_phase_table,
)
from repro.core.sssp import solve_sssp, solve_sssp_resilient
from repro.graph.generators import (
    hidden_potential_graph,
    planted_negative_cycle_graph,
    random_digraph,
)
from repro.observability import (
    NOOP_SPAN,
    Trace,
    Tracer,
    current_tracer,
    load_trace,
    phase_sequence,
    stitch_traces,
    trace_event,
    trace_span,
    tracing,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.runtime.metrics import CostAccumulator

pytestmark = pytest.mark.observability


# ---------------------------------------------------------------------------
# metamorphic algebra (hypothesis)
# ---------------------------------------------------------------------------

# an integer charge with span <= work (floats stay exact: integer-valued
# doubles add without rounding)
charges = st.lists(
    st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
        lambda t: (max(t), min(t))),
    max_size=5)

span_trees = st.recursive(
    st.fixed_dictionaries({"charges": charges}),
    lambda kids: st.fixed_dictionaries({
        "charges": charges,
        "children": st.lists(kids, min_size=1, max_size=3),
        "parallel": st.booleans(),
    }),
    max_leaves=12)


def _run_tree(node: dict, acc: CostAccumulator) -> tuple[float, float]:
    """Execute a span-tree spec; returns its exact (work, span) totals."""
    with trace_span("node", acc=acc):
        work = span = 0.0
        for w, s in node["charges"]:
            acc.charge(w, span=s)
            work += w
            span += s
        children = node.get("children", [])
        if children and node.get("parallel"):
            branches = []
            totals = []
            for child in children:
                b = acc.fork()
                totals.append(_run_tree(child, b))
                branches.append(b)
            acc.join_parallel(branches, fork_span=0.0)
            work += sum(t[0] for t in totals)
            span += max(t[1] for t in totals)
        else:
            for child in children:
                cw, cs = _run_tree(child, acc)
                work += cw
                span += cs
    return work, span


@settings(max_examples=60, deadline=None)
@given(tree=span_trees)
def test_span_tree_reproduces_cost_algebra(tree):
    """Exact composition: each span's delta equals its subtree's algebraic
    cost; span <= work holds everywhere; children never exceed parents."""
    acc = CostAccumulator()
    tr = Tracer()
    with tracing(tr):
        work, span = _run_tree(tree, acc)
    root = tr.roots()[0]
    assert root.work == work == acc.work
    assert root.span == span == acc.span
    for s in tr.spans:
        assert s.closed
        assert s.span <= s.work
        kids = tr.children(s.sid)
        if kids:
            assert sum(k.work for k in kids) <= s.work
            assert max(k.span for k in kids) <= s.span


@settings(max_examples=60, deadline=None)
@given(branches=st.lists(charges, min_size=1, max_size=4))
def test_parallel_compose_span_is_max_of_children(branches):
    """A parallel region's span delta is the max of its branch spans while
    its work delta is their sum (fork_span=0 keeps equality exact)."""
    acc = CostAccumulator()
    tr = Tracer()
    with tracing(tr):
        with trace_span("par", acc=acc):
            accs = []
            for chs in branches:
                b = acc.fork()
                with trace_span("branch", acc=b):
                    for w, s in chs:
                        b.charge(w, span=s)
                accs.append(b)
            acc.join_parallel(accs, fork_span=0.0)
    par = next(s for s in tr.spans if s.name == "par")
    kids = tr.children(par.sid)
    assert par.work == sum(k.work for k in kids)
    assert par.span == max(k.span for k in kids)
    assert par.span_model == max(k.span_model for k in kids)


@settings(max_examples=60, deadline=None)
@given(branches=st.lists(charges, min_size=1, max_size=4))
def test_structural_span_sums_children(branches):
    """A span with no accumulator totals exactly its children's sums."""
    tr = Tracer()
    with tracing(tr):
        with trace_span("structural"):
            for chs in branches:
                b = CostAccumulator()
                with trace_span("leaf", acc=b):
                    for w, s in chs:
                        b.charge(w, span=s)
    top = next(s for s in tr.spans if s.name == "structural")
    kids = tr.children(top.sid)
    assert top.work == sum(k.work for k in kids)
    assert top.span == sum(k.span for k in kids)


def test_exception_closes_spans_and_records_error():
    tr = Tracer()
    acc = CostAccumulator()
    with pytest.raises(RuntimeError):
        with tracing(tr):
            with trace_span("outer", acc=acc):
                with trace_span("inner", acc=acc):
                    acc.charge(3)
                    raise RuntimeError("boom")
    assert all(s.closed for s in tr.spans)
    assert all(s.error == "RuntimeError" for s in tr.spans)
    inner = next(s for s in tr.spans if s.name == "inner")
    assert inner.work == 3


# ---------------------------------------------------------------------------
# ledger bit-match on real solves (acceptance criterion: 50 random graphs)
# ---------------------------------------------------------------------------

def _solve_traced(g, seed):
    acc = CostAccumulator()
    tr = Tracer(seed=seed)
    with tracing(tr):
        res = solve_sssp(g, 0, seed=seed, acc=acc)
    return res, acc, tr


@pytest.mark.parametrize("seed", range(50))
def test_trace_totals_bitmatch_meter_on_random_graphs(seed):
    if seed % 2:
        g = hidden_potential_graph(30, 100, seed=seed)
    else:
        g = random_digraph(30, 100, min_w=-5, max_w=9, seed=seed)
    res, acc, tr = _solve_traced(g, seed)
    tw, ts, tm = tr.totals()
    # bit-for-bit: the root span binds to the solve's own accumulator
    assert (tw, ts, tm) == (res.cost.work, res.cost.span,
                            res.cost.span_model)
    assert (tw, ts, tm) == (acc.work, acc.span, acc.span_model)
    for s in tr.spans:
        assert s.closed
        kids = tr.children(s.sid)
        if kids:
            assert sum(k.work for k in kids) <= s.work + 1e-9
            assert sum(k.span_model for k in kids) <= s.span_model + 1e-9


def test_trace_structure_matches_scaling_stats_and_certificate():
    g = hidden_potential_graph(60, 240, seed=11)
    res, acc, tr = _solve_traced(g, 11)
    scales = [s for s in tr.spans if s.name == "scale"]
    assert [s.attrs["scale"] for s in scales] == res.stats.scales
    iters = [s for s in tr.spans if s.name == "reweighting-iteration"]
    assert len(iters) == res.stats.total_iterations
    assert [s.attrs["method"] for s in iters] == \
        [m for ps in res.stats.per_scale for m in ps.methods]
    root = tr.roots()[0]
    assert root.name == "solve"
    assert root.attrs["certificate"] == res.certificate.kind == "price"


def test_negative_cycle_trace_records_certificate():
    g, _ = planted_negative_cycle_graph(24, 80, 4, seed=2)
    res, acc, tr = _solve_traced(g, 0)
    assert res.has_negative_cycle
    root = tr.roots()[0]
    assert root.attrs["certificate"] == "negative_cycle"
    assert root.attrs["cycle_length"] == len(res.negative_cycle)
    tw, ts, tm = tr.totals()
    assert (tw, ts, tm) == (res.cost.work, res.cost.span,
                            res.cost.span_model)


def test_stage_span_sums_equal_accumulator_stage_buckets():
    """The trace reproduces the A4 stage buckets exactly: summed span
    deltas per stage name equal ``acc.stages`` on the same solve."""
    g = hidden_potential_graph(80, 320, seed=5)
    res, acc, tr = _solve_traced(g, 5)
    by_name: dict[str, float] = {}
    for s in tr.spans:
        if s.name in STAGE_SPAN_NAMES:
            by_name[s.name] = by_name.get(s.name, 0.0) + s.work
    assert set(by_name) == set(acc.stages)
    for name, cost in acc.stages.items():
        # per-instance deltas are identical; only the summation tree
        # differs (stage buckets merge hierarchically), so agreement is
        # to the last ulp, not bit-exact
        assert by_name[name] == pytest.approx(cost.work, rel=1e-12)


def test_trace_cost_breakdown_regenerates_a4_row(tmp_path):
    g = hidden_potential_graph(80, 320, seed=5)
    res, acc, tr = _solve_traced(g, 5)
    path = write_jsonl(tr, tmp_path / "t.jsonl")
    (row,) = trace_cost_breakdown(load_trace(path))
    total = acc.work
    assert row.values["total_work"] == total
    staged = 0.0
    for name, cost in acc.stages.items():
        assert row.values[f"{name}_share"] == pytest.approx(
            cost.work / total, rel=1e-12)
        staged += cost.work
    assert row.values["other_share"] == pytest.approx(
        (total - staged) / total)
    phases = trace_phase_table(path)
    assert {r.params["phase"] for r in phases} >= {"solve", "scale"}


def test_resilient_solve_traces_attempts_and_fallback():
    from repro.resilience.faults import FaultPlan

    g = hidden_potential_graph(30, 100, seed=4)
    tr = Tracer()
    plan = FaultPlan.always("potential", seed=0)
    with tracing(tr):
        res = solve_sssp_resilient(g, 0, seed=4, fault_plan=plan,
                                   max_retries=1)
    assert res.provenance.used_fallback
    attempts = [s for s in tr.spans if s.name == "attempt"]
    assert [s.attrs["attempt"] for s in attempts] == [0, 1]
    assert all(s.error == "VerificationError" for s in attempts)
    assert any(s.name == "fallback-bellman-ford" for s in tr.spans)
    assert any(e.name == "fallback" for e in tr.events)
    assert any(e.name == "retry" for e in tr.events)


# ---------------------------------------------------------------------------
# disabled tracing is a no-op
# ---------------------------------------------------------------------------

def test_no_ambient_tracer_by_default():
    assert current_tracer() is None
    assert trace_span("x") is NOOP_SPAN
    trace_event("x")  # must not raise
    with NOOP_SPAN as sp:
        sp.set(a=1)
        sp.count("c")


def test_tracing_restores_previous_tracer():
    t1, t2 = Tracer(), Tracer()
    with tracing(t1):
        assert current_tracer() is t1
        with tracing(t2):
            assert current_tracer() is t2
        assert current_tracer() is t1
    assert current_tracer() is None


def test_traced_and_untraced_solves_identical():
    g = random_digraph(40, 160, min_w=-4, max_w=9, seed=9)
    plain = solve_sssp(g, 0, seed=9)
    tr = Tracer()
    with tracing(tr):
        traced = solve_sssp(g, 0, seed=9)
    assert np.array_equal(plain.dist, traced.dist)
    assert plain.cost == traced.cost
    assert len(tr.spans) > 0


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def solved_tracer():
    g = hidden_potential_graph(40, 160, seed=3)
    tr = Tracer(seed=3, family="hidden-potential")
    with tracing(tr):
        solve_sssp(g, 0, seed=3)
    return tr


def test_jsonl_roundtrip_lossless(solved_tracer, tmp_path):
    path = write_jsonl(solved_tracer, tmp_path / "t.jsonl")
    back = load_trace(path)
    assert back.meta["seed"] == 3
    assert len(back.spans) == len(solved_tracer.spans)
    for a, b in zip(solved_tracer.spans, back.spans):
        assert (a.sid, a.parent, a.name, a.phase) == \
            (b.sid, b.parent, b.name, b.phase)
        assert (a.start_seq, a.closed_seq) == (b.start_seq, b.closed_seq)
        assert (a.work, a.span, a.span_model) == (b.work, b.span,
                                                  b.span_model)
        assert a.counters == b.counters
    assert back.totals() == solved_tracer.totals()
    assert phase_sequence(back) == \
        phase_sequence(Trace.from_tracer(solved_tracer))


def test_chrome_trace_is_valid_traceevents_doc(solved_tracer, tmp_path):
    path = write_chrome_trace(solved_tracer, tmp_path / "t.json")
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == len(solved_tracer.spans)
    for e in complete:
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert {"pid", "tid", "name", "args"} <= set(e)
        json.dumps(e["args"])  # numpy leaked in? must be JSON-encodable
    assert doc["displayTimeUnit"] == "ms"


def test_write_trace_dispatch_and_unknown_format(solved_tracer, tmp_path):
    write_trace(solved_tracer, tmp_path / "a.jsonl", fmt="jsonl")
    write_trace(solved_tracer, tmp_path / "a.json", fmt="chrome")
    with pytest.raises(ValueError, match="unknown trace format"):
        write_trace(solved_tracer, tmp_path / "a.bin", fmt="protobuf")


def test_load_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n")
    with pytest.raises(ValueError, match="not a JSONL trace line"):
        load_trace(bad)
    bad.write_text('{"kind": "mystery"}\n')
    with pytest.raises(ValueError, match="unknown trace record kind"):
        load_trace(bad)


def test_stitch_requires_cursor():
    with pytest.raises(ValueError, match="resumed_cursor"):
        stitch_traces(Trace(), Trace())
