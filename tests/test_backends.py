"""Execution-backend suite: the fault-tolerant process pool, the
degradation ladder, and backend-invariant results.

Worker-process block functions must be module-level (picklable by
reference); every timing knob is turned small so recovery paths run in
tenths of a second.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.baselines.bellman_ford import bellman_ford
from repro.baselines.bellman_ford_threaded import bellman_ford_parallel
from repro.core.sssp import solve_sssp, solve_sssp_resilient
from repro.graph.generators import bf_hard_graph, hidden_potential_graph
from repro.observability.metrics import MetricsRegistry, metering
from repro.resilience.errors import (
    CancelledError,
    DeadlineExceededError,
    WorkerPoolError,
)
from repro.resilience.faults import (
    SYSTEMIC_SITES,
    FaultPlan,
    FaultSpec,
    WorkerFaults,
)
from repro.resilience.preempt import CancelToken, Deadline, check_cancelled
from repro.runtime.backends import (
    BACKEND_NAMES,
    DegradationLadder,
    ProcessForkJoinPool,
    RemoteTraceback,
    SerialBackend,
    resolve_backend,
)
from repro.runtime.executor import ForkJoinPool
from repro.runtime.racecheck import race_checking


# ---------------------------------------------------------------------------
# module-level block functions (the picklable map_blocks contract)
# ---------------------------------------------------------------------------

def _square(lo, hi, arr):
    return arr[lo:hi] ** 2


def _ident(lo, hi):
    return list(range(lo, hi))


def _boom(lo, hi):
    if lo >= 40:
        raise ValueError(f"boom at {lo}")
    return lo


def _napping(lo, hi, naps, nap):
    for _ in range(naps):
        time.sleep(nap)
        check_cancelled("test:block")
    return lo


def _slow(lo, hi, seconds):
    time.sleep(seconds)
    return lo


ARR = np.arange(100)


def fast_pool(n_workers=2, **kw):
    kw.setdefault("grain", 8)
    kw.setdefault("heartbeat_interval", 0.02)
    kw.setdefault("liveness_timeout", 0.5)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("straggler_factor", 100.0)  # no duplicates unless asked
    return ProcessForkJoinPool(n_workers, **kw)


# ---------------------------------------------------------------------------
# protocol and plumbing
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("serial", "thread", "process")

    @pytest.mark.parametrize("make,name,shared", [
        (SerialBackend, "serial", True),
        (ForkJoinPool, "thread", True),
        (lambda: ProcessForkJoinPool(1), "process", False),
    ])
    def test_backend_surface(self, make, name, shared):
        be = make()
        try:
            assert be.name == name
            assert be.supports_shared_memory is shared
            assert be.n_workers >= 1
            for attr in ("map_blocks", "parallel_for", "shutdown"):
                assert callable(getattr(be, attr))
        finally:
            be.shutdown()

    def test_resolve_backend(self):
        assert resolve_backend(None) is None
        lad = resolve_backend("process")
        assert isinstance(lad, DegradationLadder) and lad.name == "process"
        lad.shutdown()
        pool = SerialBackend()
        assert resolve_backend(pool) is pool
        pool.shutdown()
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_shutdown_idempotent_and_closed_raises(self):
        p = fast_pool()
        p.shutdown()
        p.shutdown()
        with pytest.raises(RuntimeError, match="shut-down"):
            p.map_blocks(10, _ident)


# ---------------------------------------------------------------------------
# plain execution
# ---------------------------------------------------------------------------

class TestMapBlocks:
    def test_concatenation_is_partition_independent(self):
        # block *structure* may differ by worker count; the concatenated
        # result is the contract and must be bit-identical everywhere
        outs = {}
        for make in (lambda: SerialBackend(grain=8),
                     lambda: ForkJoinPool(2, grain=8), fast_pool):
            be = make()
            try:
                outs[be.name] = be.map_blocks(100, _square, (ARR,))
            finally:
                be.shutdown()
        for got in outs.values():
            assert np.array_equal(np.concatenate(got), ARR ** 2)
        # same worker count + grain => same block partition, in order
        assert [len(b) for b in outs["thread"]] == \
               [len(b) for b in outs["process"]]

    def test_empty_and_single_block(self):
        with fast_pool() as p:
            assert p.map_blocks(0, _ident) == []
            # n <= grain short-circuits in-process: no workers spawn
            assert p.map_blocks(5, _ident) == [[0, 1, 2, 3, 4]]
            assert p.worker_pids() == []

    def test_pool_is_reusable_across_calls(self):
        with fast_pool() as p:
            first = p.map_blocks(100, _square, (ARR,))
            pids = p.worker_pids()
            second = p.map_blocks(100, _square, (ARR,))
            assert p.worker_pids() == pids  # same workers, no respawn
            assert all(np.array_equal(a, b) for a, b in zip(first, second))


# ---------------------------------------------------------------------------
# failure channels
# ---------------------------------------------------------------------------

class TestFailures:
    def test_worker_exception_propagates_with_remote_traceback(self):
        with fast_pool() as p:
            with pytest.raises(ValueError, match="boom at") as ei:
                p.map_blocks(100, _boom)
            cause = ei.value.__cause__
            assert isinstance(cause, RemoteTraceback)
            # the block function's frame must be visible to the caller
            assert "_boom" in cause.text
            assert "boom at" in cause.text
            # deterministic errors fail fast: no loss, no respawn storm
            assert p.worker_losses == []
            # the pool survives the failure
            out = p.map_blocks(100, _square, (ARR,))
            assert np.array_equal(np.concatenate(out), ARR ** 2)

    def test_heartbeats_keep_slow_blocks_alive(self):
        # blocks take 4x the liveness timeout, but heartbeat every 20ms:
        # alive-but-slow must NOT be treated as hung
        with fast_pool(liveness_timeout=0.2) as p:
            out = p.map_blocks(20, _slow, (0.8,), grain=10)
            assert out == [0, 10]
            assert p.worker_losses == []

    def test_straggler_duplicated_first_result_wins(self):
        with fast_pool(n_workers=4, liveness_timeout=0.2,
                       straggler_factor=1.0, backoff_cap=0.02) as p:
            out = p.map_blocks(20, _slow, (0.5,), grain=5)
            assert out == [0, 5, 10, 15]
            # duplicates are discarded, never double-counted
            assert len(out) == 4


class TestCancellation:
    def test_pre_cancelled_token_raises_immediately(self):
        tok = CancelToken()
        tok.cancel("stop")
        with fast_pool() as p:
            with pytest.raises(CancelledError):
                p.map_blocks(100, _square, (ARR,), token=tok)

    def test_mid_call_cancel_keeps_workers_alive(self):
        tok = CancelToken()
        with fast_pool() as p:
            threading.Timer(0.1, tok.cancel, ("user",)).start()
            t0 = time.monotonic()
            with pytest.raises(CancelledError):
                p.map_blocks(40, _slow, (0.6,), grain=5, token=tok)
            assert time.monotonic() - t0 < 0.5  # did not drain all blocks
            # cooperative: workers were not killed, and stale in-flight
            # results are discarded (epoch tag) — next call is clean
            out = p.map_blocks(100, _square, (ARR,))
            assert np.array_equal(np.concatenate(out), ARR ** 2)
            assert p.worker_losses == []

    def test_deadline_propagates_across_process_boundary(self):
        tok = CancelToken(Deadline.after(0.15))
        with fast_pool() as p:
            t0 = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                p.map_blocks(20, _napping, (100, 0.02), grain=5, token=tok)
            assert time.monotonic() - t0 < 1.5  # not the full 2s sleep


# ---------------------------------------------------------------------------
# injected systemic faults
# ---------------------------------------------------------------------------

class TestSystemicFaults:
    def test_worker_kill_recovered_bit_identically(self):
        plan = FaultPlan([FaultSpec("worker_kill", calls=(1,))], seed=3)
        with fast_pool() as p:
            p.install_fault_plan(plan)
            out = p.map_blocks(100, _square, (ARR,))
            assert np.array_equal(np.concatenate(out), ARR ** 2)
            assert all(loss.kind == "death" for loss in p.worker_losses)
            assert len(p.worker_losses) >= 1
            # parent-side mirror recorded the fired faults for provenance
            assert plan.fired("worker_kill") == len(p.worker_losses)

    def test_result_drop_healed_by_redispatch(self):
        plan = FaultPlan([FaultSpec("result_drop", calls=(1,))], seed=5)
        with fast_pool(liveness_timeout=0.2) as p:
            p.install_fault_plan(plan)
            out = p.map_blocks(100, _square, (ARR,))
            assert np.array_equal(np.concatenate(out), ARR ** 2)
        assert plan.fired("result_drop") >= 1

    def test_worker_hang_detected_and_replaced(self):
        plan = FaultPlan([FaultSpec("worker_hang", calls=(1,))], seed=7)
        with fast_pool(liveness_timeout=0.2) as p:
            p.install_fault_plan(plan)
            out = p.map_blocks(100, _square, (ARR,))
            assert np.array_equal(np.concatenate(out), ARR ** 2)
            assert any(loss.kind == "hang" for loss in p.worker_losses)

    def test_persistent_kill_exhausts_dispatch_budget(self):
        plan = FaultPlan([FaultSpec("worker_kill")], seed=1)
        with fast_pool(max_dispatches=2, max_worker_losses=100) as p:
            p.install_fault_plan(plan)
            with pytest.raises(WorkerPoolError, match="dispatch attempts"):
                p.map_blocks(100, _square, (ARR,))
            assert p.worker_losses  # the error carries the loss story

    def test_loss_budget_trips(self):
        plan = FaultPlan([FaultSpec("worker_kill")], seed=2)
        with fast_pool(max_worker_losses=1) as p:
            p.install_fault_plan(plan)
            with pytest.raises(WorkerPoolError, match="exceed the budget"):
                p.map_blocks(100, _square, (ARR,))

    def test_worker_faults_decisions_are_pure(self):
        wf = WorkerFaults(seed=9, specs=(FaultSpec("worker_kill",
                                                   rate=0.5),))
        for lo in (0, 13, 26):
            for attempt in (1, 2, 3):
                a = wf.fires("worker_kill", lo, attempt)
                b = wf.fires("worker_kill", lo, attempt)
                assert a == b  # no hidden state
        assert not wf.fires("worker_hang", 0, 1)  # unspecified site
        with pytest.raises(ValueError, match="not a systemic site"):
            WorkerFaults(specs=(FaultSpec("assp"),))

    def test_plan_systemic_slice(self):
        plan = FaultPlan([FaultSpec("worker_kill", rate=0.2),
                          FaultSpec("assp")], seed=4)
        wf = plan.systemic()
        assert wf is not None and len(wf.specs) == 1
        assert wf.specs[0].site == "worker_kill"
        assert FaultPlan([FaultSpec("assp")]).systemic() is None
        assert set(SYSTEMIC_SITES) == {"worker_kill", "worker_hang",
                                       "result_drop"}


# ---------------------------------------------------------------------------
# external SIGKILL (the chaos primitive, in miniature)
# ---------------------------------------------------------------------------

class TestExternalKill:
    def test_sigkill_mid_call_recovers(self):
        import os
        import signal as _signal

        with fast_pool(liveness_timeout=0.6) as p:
            # warm the pool so there are pids to kill
            p.map_blocks(100, _square, (ARR,))
            state = {"killed": 0}

            def killer():
                deadline = time.monotonic() + 1.0
                while time.monotonic() < deadline:
                    pids = p.worker_pids()
                    if pids:
                        try:
                            os.kill(pids[0], _signal.SIGKILL)
                            state["killed"] += 1
                        except ProcessLookupError:
                            pass
                        return
                    time.sleep(0.01)

            t = threading.Thread(target=killer)
            t.start()
            out = p.map_blocks(20, _slow, (0.25,), grain=5)
            t.join()
            assert out == [0, 5, 10, 15]
            if state["killed"]:
                assert any(loss.kind == "death"
                           for loss in p.worker_losses)


# ---------------------------------------------------------------------------
# the degradation ladder
# ---------------------------------------------------------------------------

class TestLadder:
    def test_demotes_on_persistent_kill_and_records(self):
        plan = FaultPlan([FaultSpec("worker_kill")], seed=1)
        reg = MetricsRegistry()
        lad = DegradationLadder.for_backend(
            "process", n_workers=2, grain=8, heartbeat_interval=0.02,
            liveness_timeout=0.3, backoff_base=0.01, max_dispatches=2,
            max_worker_losses=3)
        lad.install_fault_plan(plan)
        with metering(reg), lad:
            out = lad.map_blocks(100, _square, (ARR,))
        assert np.array_equal(np.concatenate(out), ARR ** 2)
        assert lad.name == "thread"
        tele = lad.telemetry()
        assert tele["backend"] == "thread"
        assert len(tele["demotions"]) == 1
        d = tele["demotions"][0]
        assert (d["from"], d["to"]) == ("process", "thread")
        assert "WorkerPoolError" in d["reason"]
        assert tele["worker_losses"]  # losses survive the demotion
        assert json.dumps(tele)  # provenance-ready: plain JSON types
        fams = {f.name for f in reg.families()}
        assert "repro_backend_demotions_total" in fams
        assert "repro_worker_losses_total" in fams
        assert "repro_workers_spawned_total" in fams

    def test_parallel_for_routes_to_shared_memory_rung(self):
        # capability dispatch, not a failure: no demotion is recorded
        hits = []
        lad = DegradationLadder.for_backend("process", n_workers=2)
        with lad:
            lad.parallel_for(10, lambda lo, hi: hits.append((lo, hi)),
                             grain=100)
        assert hits == [(0, 10)]
        assert lad.demotions == []
        assert lad.name == "process"  # still on the top rung

    def test_process_parallel_for_alone_raises(self):
        with fast_pool() as p:
            with pytest.raises(WorkerPoolError, match="shared-memory"):
                p.parallel_for(10, lambda lo, hi: None)

    def test_thread_ladder_ends_serial(self):
        lad = DegradationLadder.for_backend("thread", n_workers=2)
        with lad:
            out = lad.map_blocks(100, _square, (ARR,), grain=8)
        assert np.array_equal(np.concatenate(out), ARR ** 2)

    def test_exhausted_ladder_raises(self):
        class Broken:
            name = "broken"
            n_workers = 1
            supports_shared_memory = False

            def map_blocks(self, *a, **kw):
                raise WorkerPoolError("always broken", backend="broken")

            def shutdown(self):
                pass

        lad = DegradationLadder([("broken", Broken())])
        with pytest.raises(WorkerPoolError, match="always broken"):
            lad.map_blocks(10, _ident)


# ---------------------------------------------------------------------------
# race-checker compatibility
# ---------------------------------------------------------------------------

class TestRaceChecker:
    def test_checker_runs_logical_blocks_without_processes(self):
        with fast_pool() as p:
            with race_checking() as checker:
                out = p.map_blocks(100, _square, (ARR,), grain=8)
            assert np.array_equal(np.concatenate(out), ARR ** 2)
            assert p.worker_pids() == []  # no workers were ever spawned
            assert checker.findings() == []

    def test_logical_blocks_identical_across_backends(self):
        counts = []
        for make in (SerialBackend,
                     lambda: ForkJoinPool(4),
                     lambda: ProcessForkJoinPool(4)):
            be = make()
            try:
                with race_checking():
                    out = be.map_blocks(100, _ident, grain=8)
            finally:
                be.shutdown()
            counts.append([len(b) for b in out])
        assert counts[0] == counts[1] == counts[2]


# ---------------------------------------------------------------------------
# solver integration: results are backend-invariant
# ---------------------------------------------------------------------------

class TestSolverIntegration:
    def test_bellman_ford_parallel_matches_reference(self):
        g = bf_hard_graph(60, 140, seed=7)
        ref = bellman_ford(g, 0)
        for make in (SerialBackend,
                     lambda: ForkJoinPool(2, grain=16),
                     lambda: fast_pool(grain=16)):
            be = make()
            try:
                res = bellman_ford_parallel(g, 0, backend=be, grain=16)
            finally:
                be.shutdown()
            assert np.array_equal(res.dist, ref.dist)

    def test_solve_sssp_backend_string_owns_lifecycle(self):
        g = hidden_potential_graph(16, 40, seed=1)
        base = solve_sssp(g, 0, seed=7)
        res = solve_sssp(g, 0, seed=7, backend="serial")
        assert np.array_equal(res.dist, base.dist)
        assert res.cost == base.cost

    def test_resilient_solve_records_backend_provenance(self):
        g = hidden_potential_graph(16, 40, seed=1)
        with fast_pool(grain=8) as p:
            lad = DegradationLadder([("process", p)])
            res = solve_sssp_resilient(g, 0, seed=7, backend=lad)
        base = solve_sssp_resilient(g, 0, seed=7)
        assert np.array_equal(res.dist, base.dist)
        prov = res.provenance
        assert prov.backend == "process"
        assert prov.demotions == [] and prov.worker_losses == []
        doc = prov.to_json()
        assert doc["backend"] == "process"
        assert json.dumps(doc)

    def test_resilient_solve_survives_total_backend_failure(self):
        class Broken:
            name = "broken"
            n_workers = 1
            supports_shared_memory = False

            def map_blocks(self, *a, **kw):
                raise WorkerPoolError("substrate gone", backend="broken")

            def shutdown(self):
                pass

        g = hidden_potential_graph(16, 40, seed=1)
        res = solve_sssp_resilient(g, 0, seed=7, backend=Broken())
        # the solve completed anyway — via the in-process fallback — and
        # the provenance says exactly why
        assert res.dist is not None
        prov = res.provenance
        assert prov.used_fallback
        assert "WorkerPoolError" in prov.fallback_reason
        base = solve_sssp_resilient(g, 0, seed=7)
        assert np.array_equal(res.dist, base.dist)

    def test_resilient_no_fallback_propagates_worker_pool_error(self):
        class Broken:
            name = "broken"
            n_workers = 1
            supports_shared_memory = False

            def map_blocks(self, *a, **kw):
                raise WorkerPoolError("substrate gone", backend="broken")

            def shutdown(self):
                pass

        g = hidden_potential_graph(16, 40, seed=1)
        with pytest.raises(WorkerPoolError, match="substrate gone"):
            solve_sssp_resilient(g, 0, seed=7, backend=Broken(),
                                 fallback=False)
