"""End-to-end tests: 1-reweighting, scaling, and solve_sssp (Theorem 17)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assp import DeltaSteppingAssp, FlakyAssp, PerturbedAssp
from repro.baselines import bellman_ford, johnson_potential
from repro.core import (
    one_reweighting,
    scaled_reweighting,
    solve_sssp,
)
from repro.graph import (
    DiGraph,
    hidden_potential_graph,
    is_feasible_price,
    negative_chain_gadget,
    planted_negative_cycle_graph,
    random_digraph,
    scale_weights,
    validate_negative_cycle,
)
from repro.runtime import CostAccumulator
from oracles import nx_sssp_oracle

MODES = ["parallel", "sequential"]


def assert_solver_matches_oracle(g, source, mode, seed=0, **kw):
    res = solve_sssp(g, source, mode=mode, seed=seed, **kw)
    oracle = johnson_potential(g)
    if oracle.negative_cycle is not None:
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)
    else:
        assert not res.has_negative_cycle
        bf = bellman_ford(g, source)
        np.testing.assert_array_equal(res.dist, bf.dist)
        assert is_feasible_price(g, res.price)
    return res


@pytest.mark.parametrize("mode", MODES)
class TestOneReweighting:
    def test_feasible_immediately(self, mode):
        g = DiGraph.from_edges(2, [(0, 1, 3)])
        res = one_reweighting(g, mode=mode)
        assert res.feasible
        assert res.stats.iterations == 0

    def test_chain(self, mode):
        g = negative_chain_gadget(25)
        res = one_reweighting(g, mode=mode)
        assert res.feasible
        assert is_feasible_price(g, res.price)
        # O(sqrt(K)) iterations: 25 negatives -> ~5+ iterations, not 25
        assert res.stats.iterations <= 12

    def test_cycle_detected(self, mode):
        g = DiGraph.from_edges(2, [(0, 1, -1), (1, 0, 0)])
        res = one_reweighting(g, mode=mode)
        assert not res.feasible
        assert validate_negative_cycle(g, res.negative_cycle)

    def test_rejects_small_weights(self, mode):
        g = DiGraph.from_edges(2, [(0, 1, -2)])
        with pytest.raises(ValueError):
            one_reweighting(g, mode=mode)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, mode, seed):
        g = random_digraph(30, 150, min_w=-1, max_w=4, seed=seed)
        res = one_reweighting(g, mode=mode, seed=seed)
        if res.feasible:
            assert is_feasible_price(g, res.price)
            assert johnson_potential(g).negative_cycle is None
        else:
            assert validate_negative_cycle(g, res.negative_cycle)


@pytest.mark.parametrize("mode", MODES)
class TestScaling:
    def test_nonnegative_shortcut(self, mode):
        g = DiGraph.from_edges(3, [(0, 1, 5), (1, 2, 0)])
        res = scaled_reweighting(g, mode=mode)
        assert res.feasible
        assert res.stats.total_iterations == 0

    def test_deeply_negative_weights(self, mode):
        g = hidden_potential_graph(25, 120, potential_spread=200, seed=1)
        res = scaled_reweighting(g, mode=mode, seed=1)
        assert res.feasible
        assert is_feasible_price(g, res.price)
        assert len(res.stats.scales) >= 7  # log2(200) ~ 8 scales

    def test_scales_halve(self, mode):
        g = hidden_potential_graph(20, 90, potential_spread=60, seed=2)
        res = scaled_reweighting(g, mode=mode, seed=2)
        s = res.stats.scales
        assert all(s[i] == 2 * s[i + 1] for i in range(len(s) - 1))
        assert s[-1] == 1

    def test_cycle_at_some_scale(self, mode):
        g, cyc = planted_negative_cycle_graph(20, 80, 3, seed=3)
        g = scale_weights(g, 16)
        res = scaled_reweighting(g, mode=mode, seed=3)
        assert not res.feasible
        assert validate_negative_cycle(g, res.negative_cycle)


@pytest.mark.parametrize("mode", MODES)
class TestSolveSssp:
    def test_diamond_negative(self, mode, diamond):
        res = solve_sssp(diamond, 0, mode=mode)
        assert res.dist.tolist() == [0, 1, 4, 3]

    def test_unreachable(self, mode):
        g = DiGraph.from_edges(3, [(0, 1, -2)])
        res = solve_sssp(g, 0, mode=mode)
        assert res.dist.tolist() == [0, -2, np.inf]

    def test_single_vertex(self, mode):
        g = DiGraph.from_edges(1, [])
        res = solve_sssp(g, 0, mode=mode)
        assert res.dist.tolist() == [0]

    def test_source_out_of_range(self, mode):
        with pytest.raises(ValueError):
            solve_sssp(DiGraph.from_edges(2, []), 5, mode=mode)

    @pytest.mark.parametrize("seed", range(6))
    def test_hidden_potential(self, mode, seed):
        g = hidden_potential_graph(30, 150, potential_spread=25, seed=seed)
        assert_solver_matches_oracle(g, 0, mode, seed=seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_random(self, mode, seed):
        g = random_digraph(24, 90, min_w=-3, max_w=7, seed=seed)
        assert_solver_matches_oracle(g, 0, mode, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_planted_cycles(self, mode, seed):
        g, _ = planted_negative_cycle_graph(22, 90, 4, seed=seed)
        res = solve_sssp(g, 0, mode=mode, seed=seed)
        assert res.has_negative_cycle
        assert validate_negative_cycle(g, res.negative_cycle)

    def test_deep_chain(self, mode):
        g = negative_chain_gadget(40, tail=1)
        res = solve_sssp(g, 0, mode=mode)
        assert res.dist[40] == -40

    def test_parent_tree_realises_distances(self, mode):
        g = hidden_potential_graph(25, 120, seed=9)
        res = solve_sssp(g, 0, mode=mode, seed=9)
        for v in range(g.n):
            p = int(res.parent[v])
            if p >= 0:
                assert res.dist[v] == res.dist[p] + g.min_weight_between(p, v)

    def test_matches_networkx(self, mode):
        g = random_digraph(20, 80, min_w=-4, max_w=9, seed=42)
        expected, has_cycle = nx_sssp_oracle(g, 0)
        res = solve_sssp(g, 0, mode=mode, seed=42)
        if res.has_negative_cycle:
            # our detector is global; networkx's oracle is source-limited,
            # so confirm via johnson
            assert johnson_potential(g).negative_cycle is not None
        else:
            assert not has_cycle
            np.testing.assert_array_equal(res.dist, expected)

    def test_cost_charged(self, mode):
        g = hidden_potential_graph(20, 90, seed=4)
        acc = CostAccumulator()
        res = solve_sssp(g, 0, mode=mode, acc=acc, seed=4)
        assert acc.work == res.cost.work > 0
        assert res.cost.span_model > 0


class TestParallelSpecific:
    @pytest.mark.parametrize("engine", [PerturbedAssp(seed=5),
                                        DeltaSteppingAssp()],
                             ids=["perturbed", "delta-stepping"])
    def test_assp_engines(self, engine):
        g = hidden_potential_graph(25, 120, seed=6)
        res = solve_sssp(g, 0, mode="parallel", assp_engine=engine, seed=6)
        bf = bellman_ford(g, 0)
        np.testing.assert_array_equal(res.dist, bf.dist)

    def test_flaky_assp_still_correct(self):
        g = negative_chain_gadget(20, tail=1)
        engine = FlakyAssp(p_fail=0.2, seed=13)
        res = solve_sssp(g, 0, mode="parallel", assp_engine=engine)
        bf = bellman_ford(g, 0)
        np.testing.assert_array_equal(res.dist, bf.dist)

    def test_modes_agree(self):
        for seed in range(5):
            g = random_digraph(18, 70, min_w=-2, max_w=5, seed=seed)
            rp = solve_sssp(g, 0, mode="parallel", seed=seed)
            rs = solve_sssp(g, 0, mode="sequential", seed=seed)
            assert rp.has_negative_cycle == rs.has_negative_cycle
            if not rp.has_negative_cycle:
                np.testing.assert_array_equal(rp.dist, rs.dist)

    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_graphs(self, seed):
        g = random_digraph(14, 50, min_w=-3, max_w=6, seed=seed)
        assert_solver_matches_oracle(g, 0, "parallel", seed=seed)

    @given(st.integers(0, 100_000), st.integers(1, 400))
    @settings(max_examples=20, deadline=None)
    def test_property_weight_magnitudes(self, seed, spread):
        g = hidden_potential_graph(12, 50, potential_spread=spread,
                                   seed=seed)
        res = solve_sssp(g, 0, mode="parallel", seed=seed)
        bf = bellman_ford(g, 0)
        assert not res.has_negative_cycle
        np.testing.assert_array_equal(res.dist, bf.dist)
