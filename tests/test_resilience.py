"""Resilience suite: fault injection, certified retries, degradation.

Run standalone with ``python -m pytest -m resilience``.

The core of the suite is the fault matrix: for each of the four fault
sites (``assp``, ``priorities``, ``price``, ``potential``) we prove that
the fault is (a) *caught* by the verifier that owns it, (b) *healed* by a
retry with fresh randomness when transient, and (c) *degraded* cleanly to
the Bellman–Ford fallback when persistent.  Everything is deterministic
under fixed seeds.
"""

import numpy as np
import pytest

from repro import (
    BudgetExceededError,
    BudgetGuard,
    Certificate,
    DiGraph,
    FaultPlan,
    InputValidationError,
    NegativeCycleError,
    ReproError,
    RetryExhaustedError,
    RetryPolicy,
    VerificationError,
    solve_sssp,
    solve_sssp_resilient,
)
from repro.baselines.bellman_ford import bellman_ford
from repro.baselines.johnson import johnson_potential
from repro.core import one_reweighting
from repro.dag01 import dag01_limited_sssp
from repro.graph import generators
from repro.graph.digraph import MAX_ABS_WEIGHT
from repro.graph.validate import check_overflow_safety, validate_negative_cycle
from repro.limited import limited_sssp
from repro.resilience import FAULT_SITES, FaultSpec, Meter
from repro.runtime.metrics import CostAccumulator
from repro.runtime.model import DEFAULT_MODEL

pytestmark = pytest.mark.resilience

SITES = tuple(FAULT_SITES)


@pytest.fixture
def g():
    """Reference instance that exercises all four fault sites in parallel
    mode (assp 14 calls, priorities/price 4, potential 1 at seed 0)."""
    return generators.hidden_potential_graph(14, 40, potential_spread=6,
                                             seed=0)


@pytest.fixture
def gpos(g):
    return g.with_weights(np.abs(g.w))


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------

class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(InputValidationError, ReproError)
        assert issubclass(VerificationError, ReproError)
        assert issubclass(RetryExhaustedError, VerificationError)
        assert issubclass(BudgetExceededError, ReproError)
        assert issubclass(NegativeCycleError, ReproError)

    def test_backward_compat_with_stdlib_types(self):
        # existing callers catch ValueError/RuntimeError; keep that working
        assert issubclass(InputValidationError, ValueError)
        assert issubclass(VerificationError, RuntimeError)

    def test_budget_error_is_not_a_verification_error(self):
        # retry loops swallow VerificationError; a blown budget must not be
        # retried away
        assert not issubclass(BudgetExceededError, VerificationError)

    def test_retry_exhausted_carries_attempts(self, gpos):
        with pytest.raises(RetryExhaustedError) as ei:
            limited_sssp(gpos, 0, 30, fault_plan=FaultPlan.always("assp"),
                         max_retries=2)
        exc = ei.value
        assert exc.stage == "limited_sssp"
        assert len(exc.attempts) == 3
        assert not any(a.ok for a in exc.attempts)

    def test_certificate_verify_price(self, g):
        res = solve_sssp(g, 0)
        cert = res.certificate
        assert cert.kind == "price" and cert.checked
        bad = Certificate("price", price=cert.price + np.arange(g.n) * 100)
        assert not bad.verify(g)

    def test_certificate_verify_cycle(self):
        gc = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -3), (2, 1, 1)])
        res = solve_sssp(gc, 0)
        assert res.certificate.kind == "negative_cycle"
        assert res.certificate.verify(gc)
        assert not Certificate("negative_cycle", cycle=[0, 1]).verify(gc)


# ---------------------------------------------------------------------------
# satellite 1: hardened DiGraph input validation
# ---------------------------------------------------------------------------

class TestInputHardening:
    def test_nan_weight_rejected(self):
        with pytest.raises(InputValidationError, match="NaN or inf"):
            DiGraph(2, [0], [1], np.array([float("nan")]))

    def test_inf_weight_rejected(self):
        with pytest.raises(InputValidationError, match="NaN or inf"):
            DiGraph(2, [0], [1], np.array([np.inf]))

    def test_fractional_float_rejected(self):
        with pytest.raises(InputValidationError, match="integral"):
            DiGraph.from_edges(2, [(0, 1, 2.5)])

    def test_integral_float_accepted(self):
        g = DiGraph.from_edges(2, [(0, 1, 2.0)])
        assert g.w.dtype == np.int64 and g.w[0] == 2

    def test_overflow_risk_weight_rejected(self):
        with pytest.raises(InputValidationError, match="overflow"):
            DiGraph.from_edges(2, [(0, 1, MAX_ABS_WEIGHT + 1)])

    def test_endpoint_out_of_range(self):
        with pytest.raises(InputValidationError):
            DiGraph.from_edges(2, [(0, 5, 1)])
        # still a ValueError for legacy callers
        with pytest.raises(ValueError):
            DiGraph.from_edges(2, [(0, 5, 1)])

    def test_whole_instance_overflow_check(self):
        # per-weight magnitude is legal, but n·max|w| breaks the scaled
        # arithmetic headroom — only the whole-instance check sees that
        g = DiGraph.from_edges(40, [(0, 1, MAX_ABS_WEIGHT)])
        with pytest.raises(InputValidationError, match="overflow"):
            check_overflow_safety(g)

    def test_resilient_solver_validates_first(self):
        g = DiGraph.from_edges(3, [(0, 1, 1)])
        with pytest.raises(InputValidationError):
            solve_sssp_resilient(g, 7)


# ---------------------------------------------------------------------------
# fault plan determinism
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("bogus")

    def test_on_calls_schedule(self):
        plan = FaultPlan.on_calls("assp", 2)
        d = np.array([0.0, 1.0, 2.0])
        first = plan.corrupt_assp(d, 0)
        second = plan.corrupt_assp(d, 0)
        assert np.array_equal(first, d)          # call 1: no fire
        assert not np.array_equal(second, d)     # call 2: fires
        assert plan.fired("assp") == 1

    def test_same_seed_same_schedule(self, g):
        logs = []
        for _ in range(2):
            plan = FaultPlan.with_rate(0.4, seed=11)
            res = solve_sssp_resilient(g, 0, seed=5, fault_plan=plan,
                                       retry_policy=RetryPolicy(max_attempts=4))
            logs.append((plan.summary(),
                         [(e.site, e.call) for e in plan.events],
                         None if res.dist is None else res.dist.tolist()))
        assert logs[0] == logs[1]

    def test_reset_restarts_schedule(self):
        plan = FaultPlan.always("priorities", seed=2)
        a = plan.perturb_priorities(np.ones(6, dtype=np.int64))
        plan.reset()
        b = plan.perturb_priorities(np.ones(6, dtype=np.int64))
        assert np.array_equal(a, b) and plan.fired("priorities") == 1


# ---------------------------------------------------------------------------
# the fault matrix: caught / healed / degraded, per site
# ---------------------------------------------------------------------------

class TestFaultCaught:
    """Leg (a): each fault class trips the verifier that owns it."""

    def test_assp_caught_by_lemma10(self, gpos):
        with pytest.raises(RetryExhaustedError) as ei:
            limited_sssp(gpos, 0, 30, fault_plan=FaultPlan.always("assp"),
                         max_retries=0)
        assert ei.value.stage == "limited_sssp"

    def test_priorities_caught_by_contract_check(self):
        dag = generators.random_dag(20, 50, weights=(0, -1), seed=1)
        with pytest.raises(VerificationError) as ei:
            dag01_limited_sssp(dag, 0, 10,
                               fault_plan=FaultPlan.always("priorities"))
        assert ei.value.stage == "dag01_peeling"

    def test_price_caught_by_improvement_check(self, g):
        w1 = np.maximum(g.w, -1)
        with pytest.raises(RetryExhaustedError) as ei:
            one_reweighting(g, w1, mode="sequential",
                            fault_plan=FaultPlan.always("price"),
                            retry_policy=RetryPolicy(max_attempts=2))
        assert ei.value.stage == "sqrt_k_improvement"

    def test_potential_caught_by_feasibility_check(self, g):
        with pytest.raises(VerificationError, match="infeasible price"):
            solve_sssp(g, 0, fault_plan=FaultPlan.always("potential"))


class TestFaultHealed:
    """Leg (b): a transient fault (first call only) heals under retry —
    the end-to-end answer matches the clean run exactly."""

    @pytest.mark.parametrize("site", SITES)
    def test_transient_fault_heals(self, g, site):
        clean = solve_sssp(g, 0)
        plan = FaultPlan.on_calls(site, 1, seed=3)
        res = solve_sssp_resilient(g, 0, seed=0, fault_plan=plan)
        assert plan.fired(site) == 1, "fault never fired — wrong hook?"
        assert not res.provenance.used_fallback
        assert np.array_equal(res.dist, clean.dist)
        assert res.certificate.checked

    def test_potential_heal_is_visible_in_provenance(self, g):
        # the potential fault is only caught at the very top, so healing it
        # costs exactly one top-level retry
        plan = FaultPlan.on_calls("potential", 1, seed=3)
        res = solve_sssp_resilient(g, 0, seed=0, fault_plan=plan)
        assert res.provenance.retries == 1
        assert [a.ok for a in res.provenance.attempts] == [False, True]

    def test_attempt_seeds_escalate_deterministically(self):
        policy = RetryPolicy(max_attempts=4)
        assert policy.attempt_seed(123, 0) == 123   # bit-for-bit happy path
        seeds = [policy.attempt_seed(123, a) for a in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [policy.attempt_seed(123, a) for a in range(4)]


class TestFaultDegraded:
    """Leg (c): a persistent fault exhausts retries and degrades to the
    Bellman–Ford fallback, whose answer matches the oracle."""

    @pytest.mark.parametrize("site", SITES)
    def test_persistent_fault_falls_back(self, g, site):
        bf = bellman_ford(g, 0)
        plan = FaultPlan.always(site, seed=3)
        res = solve_sssp_resilient(g, 0, seed=0, fault_plan=plan,
                                   retry_policy=RetryPolicy(max_attempts=2))
        assert plan.fired(site) > 0
        assert res.provenance.engine == "fallback:bellman_ford"
        assert res.provenance.fallback_reason is not None
        assert res.provenance.faults["fired"][site] > 0
        assert np.array_equal(res.dist, bf.dist)
        assert res.certificate.kind == "price" and res.certificate.checked

    def test_no_fallback_raises(self, g):
        plan = FaultPlan.always("potential", seed=3)
        with pytest.raises(RetryExhaustedError):
            solve_sssp_resilient(g, 0, seed=0, fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=2),
                                 fallback=False)

    def test_fallback_detects_cycles_too(self):
        gc, _ = generators.planted_negative_cycle_graph(12, 40, 3, seed=4)
        plan = FaultPlan.always(*SITES, seed=3)
        res = solve_sssp_resilient(gc, 0, fault_plan=plan,
                                   retry_policy=RetryPolicy(max_attempts=2))
        assert res.has_negative_cycle
        assert validate_negative_cycle(gc, res.negative_cycle)


# ---------------------------------------------------------------------------
# budget guards
# ---------------------------------------------------------------------------

class TestBudget:
    def test_tiny_budget_falls_back(self, g):
        res = solve_sssp_resilient(g, 0, max_work=1.0)
        assert res.provenance.used_fallback
        assert "BudgetExceededError" in res.provenance.fallback_reason
        assert np.array_equal(res.dist, bellman_ford(g, 0).dist)

    def test_tiny_budget_no_fallback_raises(self, g):
        with pytest.raises(BudgetExceededError) as ei:
            solve_sssp_resilient(g, 0, max_work=1.0, fallback=False)
        assert ei.value.spent_work > ei.value.max_work == 1.0

    def test_ample_budget_is_invisible(self, g):
        clean = solve_sssp(g, 0)
        res = solve_sssp_resilient(g, 0, max_work=1e12)
        assert not res.provenance.used_fallback
        assert np.array_equal(res.dist, clean.dist)

    def test_guard_debits_and_meter_deltas(self):
        guard = BudgetGuard(max_work=100.0)
        acc = CostAccumulator()
        meter = Meter(guard, acc)
        acc.charge_cost(DEFAULT_MODEL.map(30))
        meter.tick()
        assert guard.spent_work > 0
        assert guard.remaining_work() < 100.0
        acc.charge_cost(DEFAULT_MODEL.map(10 ** 6))
        with pytest.raises(BudgetExceededError):
            meter.tick()

    def test_span_budget(self, g):
        with pytest.raises(BudgetExceededError):
            solve_sssp_resilient(g, 0, max_span=0.5, fallback=False)


# ---------------------------------------------------------------------------
# negative-cycle surfacing
# ---------------------------------------------------------------------------

class TestNegativeCycle:
    def test_raise_on_cycle(self):
        gc = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -3), (2, 1, 1)])
        with pytest.raises(NegativeCycleError) as ei:
            solve_sssp_resilient(gc, 0, raise_on_cycle=True)
        assert validate_negative_cycle(gc, ei.value.cycle)

    def test_cycle_result_by_default(self):
        gc = DiGraph.from_edges(3, [(0, 1, 1), (1, 2, -3), (2, 1, 1)])
        res = solve_sssp_resilient(gc, 0)
        assert res.has_negative_cycle and res.certificate.checked


# ---------------------------------------------------------------------------
# satellite 3 sweep: 50 random graphs vs the Bellman–Ford oracle,
# faults enabled
# ---------------------------------------------------------------------------

class TestSeedSweep:
    @pytest.mark.parametrize("i", range(50))
    def test_resilient_solver_matches_oracle(self, i):
        g = generators.random_digraph(12, 36, min_w=-5, max_w=9, seed=100 + i)
        plan = FaultPlan.with_rate(0.3, seed=i)
        res = solve_sssp_resilient(g, 0, seed=i, fault_plan=plan,
                                   retry_policy=RetryPolicy(max_attempts=3))
        # whole-graph oracle: the solver certifies cycles anywhere in the
        # graph, not just those reachable from the source
        if johnson_potential(g).negative_cycle is not None:
            assert res.has_negative_cycle
            assert validate_negative_cycle(g, res.negative_cycle)
        else:
            assert not res.has_negative_cycle
            assert np.array_equal(res.dist, bellman_ford(g, 0).dist)
        assert res.certificate.checked
