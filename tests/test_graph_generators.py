"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.baselines import bellman_ford
from repro.graph import (
    DiGraph,
    grid_graph,
    hidden_potential_graph,
    independent_negatives_gadget,
    is_dag,
    layered_dag,
    negative_chain_gadget,
    planted_negative_cycle_graph,
    random_dag,
    random_digraph,
    scale_weights,
    topological_order,
    validate_negative_cycle,
    zero_heavy_digraph,
)


def reaches_all(g: DiGraph, s: int) -> bool:
    seen = np.zeros(g.n, dtype=bool)
    seen[s] = True
    stack = [s]
    while stack:
        u = stack.pop()
        for v in g.successors(u).tolist():
            if not seen[v]:
                seen[v] = True
                stack.append(v)
    return bool(seen.all())


class TestRandomDigraph:
    def test_simple_no_self_loops(self):
        g = random_digraph(50, 300, seed=0)
        assert (g.src != g.dst).all()
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        assert len(pairs) == g.m

    def test_weight_range(self):
        g = random_digraph(30, 100, min_w=2, max_w=5, seed=1)
        assert g.w.min() >= 2 and g.w.max() <= 5

    def test_deterministic(self):
        a = random_digraph(20, 60, seed=7)
        b = random_digraph(20, 60, seed=7)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.w, b.w)

    def test_tiny(self):
        assert random_digraph(1, 5, seed=0).m == 0
        assert random_digraph(0, 5, seed=0).n == 0


class TestRandomDag:
    def test_is_dag(self):
        g = random_dag(40, 150, seed=3)
        assert is_dag(g)

    def test_weights_restricted(self):
        g = random_dag(40, 150, weights=(0, -1), seed=3)
        assert set(np.unique(g.w).tolist()) <= {0, -1}

    def test_source_reaches_all(self):
        g = random_dag(40, 150, seed=3, connect_from_source=0)
        assert reaches_all(g, 0)

    def test_no_source_connection(self):
        g = random_dag(40, 10, seed=3, connect_from_source=None)
        assert is_dag(g)


class TestLayeredDag:
    def test_structure(self):
        g = layered_dag(5, 4, seed=0)
        assert g.n == 21
        assert is_dag(g)
        assert reaches_all(g, 0)

    def test_weights_01(self):
        g = layered_dag(4, 3, p_negative=0.7, seed=1)
        assert set(np.unique(g.w).tolist()) <= {0, -1}

    def test_long_edges_keep_dagness(self):
        g = layered_dag(6, 3, long_edges=10, seed=2)
        assert is_dag(g)

    def test_all_negative(self):
        g = layered_dag(3, 2, p_negative=1.0, seed=0)
        assert (g.w == -1).all()


class TestHiddenPotential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_negative_cycle(self, seed):
        g = hidden_potential_graph(40, 200, seed=seed)
        res = bellman_ford(g, 0)
        assert not res.has_negative_cycle

    def test_has_negative_edges(self):
        g = hidden_potential_graph(60, 400, potential_spread=30, seed=0)
        assert g.w.min() < 0

    def test_source_reaches_all(self):
        g = hidden_potential_graph(30, 100, seed=5)
        assert reaches_all(g, 0)


class TestPlantedCycle:
    @pytest.mark.parametrize("clen", [2, 3, 7])
    def test_cycle_is_negative(self, clen):
        g, cyc = planted_negative_cycle_graph(30, 120, clen, seed=0)
        assert len(cyc) == clen
        assert validate_negative_cycle(g, cyc)

    def test_detected_by_bellman_ford(self):
        g, cyc = planted_negative_cycle_graph(25, 100, 4, seed=1)
        # connect source to the cycle to ensure reachability
        src = np.r_[g.src, [0]]
        dst = np.r_[g.dst, [cyc[0]]]
        w = np.r_[g.w, [0]]
        g2 = DiGraph(g.n, src, dst, w)
        assert bellman_ford(g2, 0).has_negative_cycle

    def test_bad_cycle_len(self):
        with pytest.raises(ValueError):
            planted_negative_cycle_graph(5, 10, 1, seed=0)


class TestGadgets:
    def test_negative_chain(self):
        g = negative_chain_gadget(5)
        assert is_dag(g)
        d = bellman_ford(g, 0).dist
        assert d[5] == -5

    def test_negative_chain_with_tails(self):
        g = negative_chain_gadget(3, tail=2)
        assert g.n == 4 + 4 * 2
        assert is_dag(g)

    def test_independent_negatives(self):
        g = independent_negatives_gadget(4)
        d = bellman_ford(g, 0).dist
        assert (d[1:] == -1).all()

    def test_grid(self):
        g = grid_graph(4, 5, seed=0)
        assert g.n == 20
        assert is_dag(g)
        assert g.m == 4 * 4 + 3 * 5  # right + down edges

    def test_zero_heavy(self):
        g = zero_heavy_digraph(40, 300, p_zero=0.9, seed=0)
        assert (g.w >= 0).all()
        assert (g.w == 0).mean() > 0.5

    def test_scale_weights(self):
        g = DiGraph.from_edges(2, [(0, 1, -3)])
        assert scale_weights(g, 10).w.tolist() == [-30]


class TestGeometricAndPowerLaw:
    def test_geometric_feasible(self):
        from repro.graph import geometric_digraph

        g = geometric_digraph(150, seed=0)
        assert g.w.min() < 0
        assert not bellman_ford(g, 0).has_negative_cycle

    def test_geometric_locality(self):
        """Geometric graphs have higher hop diameter than uniform random
        ones of the same size (the road-network character)."""
        from repro.graph import geometric_digraph

        g = geometric_digraph(300, seed=1)
        r = random_digraph(300, g.m, seed=1)
        bf_g = bellman_ford(g.with_weights(np.ones(g.m, dtype=np.int64)), 0)
        bf_r = bellman_ford(r.with_weights(np.ones(r.m, dtype=np.int64)), 0)
        assert bf_g.rounds > bf_r.rounds

    def test_geometric_tiny(self):
        from repro.graph import geometric_digraph

        assert geometric_digraph(1, seed=0).n == 1

    def test_power_law_feasible(self):
        from repro.graph import power_law_digraph

        g = power_law_digraph(150, seed=0)
        assert g.w.min() < 0
        assert not bellman_ford(g, 0).has_negative_cycle

    def test_power_law_hub_degrees(self):
        """Preferential attachment: the max total degree far exceeds the
        median (hub-dominated)."""
        from repro.graph import power_law_digraph

        g = power_law_digraph(400, seed=2)
        deg = g.out_degree() + g.in_degree()
        assert deg.max() > 6 * np.median(deg)

    def test_power_law_tiny(self):
        from repro.graph import power_law_digraph

        assert power_law_digraph(0, seed=0).n == 0
